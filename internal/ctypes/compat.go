package ctypes

// Compatible reports whether a and b are compatible types (C11 §6.2.7),
// ignoring top-level qualifiers on object types but honoring them on
// pointed-to types.
func Compatible(a, b *Type) bool { return compatible(a, b, true) }

// CompatibleQual reports compatibility including top-level qualifiers
// (needed for pointer assignment checks, C11 §6.5.16.1:1).
func CompatibleQual(a, b *Type) bool { return compatible(a, b, false) }

func compatible(a, b *Type, ignoreTopQual bool) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if !ignoreTopQual && a.Qual != b.Qual {
		return false
	}
	if a.Kind != b.Kind {
		// Enum types are compatible with their underlying int type.
		if (a.Kind == Enum && b.Kind == Int) || (a.Kind == Int && b.Kind == Enum) {
			return true
		}
		return false
	}
	switch a.Kind {
	case Ptr:
		return compatible(a.Elem, b.Elem, false)
	case Array:
		if a.ArrayLen >= 0 && b.ArrayLen >= 0 && a.ArrayLen != b.ArrayLen {
			return false
		}
		return compatible(a.Elem, b.Elem, false)
	case Struct, Union:
		// Same tag within one translation unit means the same type object;
		// distinct type objects with the same tag arise across units, which
		// we don't link. Structural equivalence for anonymous types.
		if a.Tag != "" || b.Tag != "" {
			return a == b || (a.Tag == b.Tag && sameFields(a, b))
		}
		return sameFields(a, b)
	case Func:
		if !compatible(a.Elem, b.Elem, true) {
			return false
		}
		if a.OldStyle || b.OldStyle {
			return true
		}
		if a.Variadic != b.Variadic || len(a.Params) != len(b.Params) {
			return false
		}
		for i := range a.Params {
			if !compatible(a.Params[i].Type.Unqualified(), b.Params[i].Type.Unqualified(), true) {
				return false
			}
		}
		return true
	}
	return true
}

func sameFields(a, b *Type) bool {
	if a.Incomplete || b.Incomplete {
		return a.Incomplete == b.Incomplete
	}
	if len(a.Fields) != len(b.Fields) {
		return false
	}
	for i := range a.Fields {
		fa, fb := a.Fields[i], b.Fields[i]
		if fa.Name != fb.Name || !compatible(fa.Type, fb.Type, false) {
			return false
		}
		if fa.BitField != fb.BitField || fa.BitWidth != fb.BitWidth {
			return false
		}
	}
	return true
}

// AliasAllowed reports whether an object whose effective type is obj may be
// accessed through an lvalue of type lv (C11 §6.5:7, the strict-aliasing
// rule). Access through character types is always allowed.
func AliasAllowed(lv, obj *Type) bool {
	lv = lv.Unqualified()
	obj = obj.Unqualified()
	if lv.IsCharTy() {
		return true
	}
	if Compatible(lv, obj) {
		return true
	}
	// Signed/unsigned counterpart of a compatible type.
	if lv.IsInteger() && obj.IsInteger() && correspondingSigns(lv.Kind, obj.Kind) {
		return true
	}
	// A member type of an aggregate or union.
	if obj.Kind == Struct || obj.Kind == Union {
		for _, f := range obj.Fields {
			if AliasAllowed(lv, f.Type) {
				return true
			}
		}
	}
	if obj.Kind == Array {
		return AliasAllowed(lv, obj.Elem)
	}
	return false
}

func correspondingSigns(a, b Kind) bool {
	if a == b {
		return true
	}
	return unsignedOf(a) == b || unsignedOf(b) == a
}
