// Package spec implements the paper's §4.5.2: declarative negative
// specifications ("axioms") layered on top of the positive semantics.
//
// The paper proposes writing properties like
//
//	¬⟨* (NULL : ptrType(T)) ···⟩k
//
// — "it is never the case that the next action is dereferencing a null
// pointer" — and notes the technique is untested ("we know of no semantic
// framework incorporating them"). Here the abstract machine publishes its
// next actions as events, and monitors match configuration patterns over
// them. A monitor's match is a UB verdict, independent of the machine's own
// built-in checks — so the positive rules stay clean (the §4.5 goal) and
// the negative axioms live outside them.
package spec

import (
	"fmt"

	"repro/internal/ctypes"
	"repro/internal/mem"
	"repro/internal/token"
	"repro/internal/ub"
)

// EventKind classifies the next action of the machine.
type EventKind int

// Event kinds.
const (
	EvDeref    EventKind = iota // about to dereference Ptr as Type
	EvRead                      // about to read [Obj+Off, +Size) as Type
	EvWrite                     // about to write [Obj+Off, +Size) as Type
	EvCall                      // about to call function Name
	EvSeqPoint                  // crossing a sequence point
)

func (k EventKind) String() string {
	switch k {
	case EvDeref:
		return "deref"
	case EvRead:
		return "read"
	case EvWrite:
		return "write"
	case EvCall:
		return "call"
	case EvSeqPoint:
		return "seq-point"
	}
	return "event"
}

// Event is one observable action of the abstract machine — the redex at the
// head of the k cell, in the paper's terms.
type Event struct {
	Kind EventKind
	Pos  token.Pos

	// Deref events.
	Ptr mem.Ptr

	// Read/write events.
	Obj  mem.ObjID
	Off  int64
	Size int64

	// Deref/read/write: the lvalue type.
	Type *ctypes.Type

	// Call events.
	Name string
}

// Monitor observes events and may veto them with a UB verdict.
type Monitor interface {
	// Name identifies the axiom in reports.
	Name() string
	// Observe returns a non-nil error to reject the action.
	Observe(ev Event) *ub.Error
}

// ---------- the paper's example axioms ----------

// NeverDerefNull is ¬⟨* (NULL : ptrType(T)) ···⟩k.
func NeverDerefNull() Monitor {
	return MonitorFunc("never-deref-null", func(ev Event) *ub.Error {
		if ev.Kind == EvDeref && ev.Ptr.IsNull() {
			return ub.New(ub.InvalidDeref, ev.Pos, "",
				"axiom ¬⟨*(NULL : ptrType(T))⟩ violated: dereferencing a null pointer")
		}
		return nil
	})
}

// NeverDerefVoid is ¬⟨* (L : ptrType(void)) ···⟩k.
func NeverDerefVoid() Monitor {
	return MonitorFunc("never-deref-void", func(ev Event) *ub.Error {
		if ev.Kind == EvDeref && ev.Type != nil && ev.Type.Kind == ctypes.Void {
			return ub.New(ub.DerefVoid, ev.Pos, "",
				"axiom ¬⟨*(L : ptrType(void))⟩ violated: dereferencing a void pointer")
		}
		return nil
	})
}

// NoUnseqConflict is the paper's read-write overlap axiom:
//
//	¬(⟨read(L,T) ···⟩k ⟨write(L′,T′,V) ···⟩k) when overlaps((L,T), (L′,T′))
//
// realized over the events between two sequence points.
func NoUnseqConflict() Monitor {
	return &unseqMonitor{written: map[mem.Loc]token.Pos{}}
}

type unseqMonitor struct {
	written map[mem.Loc]token.Pos
}

func (m *unseqMonitor) Name() string { return "no-unsequenced-conflict" }

func (m *unseqMonitor) Observe(ev Event) *ub.Error {
	switch ev.Kind {
	case EvSeqPoint:
		if len(m.written) > 0 {
			m.written = map[mem.Loc]token.Pos{}
		}
	case EvWrite:
		for i := int64(0); i < ev.Size; i++ {
			loc := mem.Loc{Obj: ev.Obj, Off: ev.Off + i}
			if _, clash := m.written[loc]; clash {
				return ub.New(ub.UnseqSideEffect, ev.Pos, "",
					"axiom violated: overlapping unsequenced writes")
			}
		}
		for i := int64(0); i < ev.Size; i++ {
			m.written[mem.Loc{Obj: ev.Obj, Off: ev.Off + i}] = ev.Pos
		}
	case EvRead:
		for i := int64(0); i < ev.Size; i++ {
			loc := mem.Loc{Obj: ev.Obj, Off: ev.Off + i}
			if _, clash := m.written[loc]; clash {
				return ub.New(ub.UnseqValueComp, ev.Pos, "",
					"axiom violated: read overlaps an unsequenced write")
			}
		}
	}
	return nil
}

// NeverCall forbids reaching a function at all (useful for encoding
// "library function F must not be reachable" policies).
func NeverCall(name string, behavior *ub.Behavior) Monitor {
	return MonitorFunc("never-call-"+name, func(ev Event) *ub.Error {
		if ev.Kind == EvCall && ev.Name == name {
			return ub.New(behavior, ev.Pos, "",
				"axiom violated: call to forbidden function %q", name)
		}
		return nil
	})
}

// MonitorFunc adapts a function to the Monitor interface.
func MonitorFunc(name string, f func(Event) *ub.Error) Monitor {
	return funcMonitor{name: name, f: f}
}

type funcMonitor struct {
	name string
	f    func(Event) *ub.Error
}

func (m funcMonitor) Name() string { return m.name }

func (m funcMonitor) Observe(ev Event) *ub.Error { return m.f(ev) }

// Set is an ordered collection of monitors.
type Set []Monitor

// Observe feeds the event to each monitor, returning the first veto.
func (s Set) Observe(ev Event) *ub.Error {
	for _, m := range s {
		if err := m.Observe(ev); err != nil {
			err.Msg = fmt.Sprintf("[%s] %s", m.Name(), err.Msg)
			return err
		}
	}
	return nil
}
