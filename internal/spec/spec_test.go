package spec_test

import (
	"strings"
	"testing"

	undefc "repro"
	"repro/internal/interp"
	"repro/internal/spec"
	"repro/internal/ub"
)

// runWith executes src with the given monitors and an OTHERWISE PERMISSIVE
// profile: this demonstrates the §4.5.2 point that declarative axioms can
// capture undefined behavior without touching the positive rules.
func runWith(t *testing.T, src string, monitors ...spec.Monitor) undefc.Result {
	t.Helper()
	// A profile with the relevant built-in checks off, so that ONLY the
	// monitor can catch the behavior.
	permissive := &interp.Profile{Name: "permissive"}
	res := undefc.RunSource(src, "spec.c", undefc.Options{
		Exec: interp.Options{Profile: permissive, Monitors: spec.Set(monitors)},
	})
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	return res
}

func TestNeverDerefNullAxiom(t *testing.T) {
	src := `
int main(void){
	char *p = 0;
	char c = *p;
	(void)c;
	return 0;
}
`
	// Without the axiom (and with null checks off in the machine), the
	// deref still hits the machine's null handling — so check the axiom
	// fires FIRST by matching its message.
	res := runWith(t, src, spec.NeverDerefNull())
	if res.UB == nil {
		t.Fatal("axiom did not fire")
	}
	if !strings.Contains(res.UB.Msg, "never-deref-null") {
		t.Errorf("expected the axiom's veto, got %v", res.UB)
	}
}

func TestNeverDerefVoidAxiom(t *testing.T) {
	src := `
int main(void){
	int x = 5;
	void *p = &x;
	*p;
	return 0;
}
`
	res := runWith(t, src, spec.NeverDerefVoid())
	if res.UB == nil || !strings.Contains(res.UB.Msg, "never-deref-void") {
		t.Errorf("expected void-deref axiom, got %v", res.UB)
	}
}

func TestUnseqAxiom(t *testing.T) {
	// The machine's own Seq checking is off in the permissive profile;
	// only the declarative axiom sees the conflict.
	src := `
int main(void){
	int x = 0;
	return (x = 1) + (x = 2);
}
`
	res := runWith(t, src, spec.NoUnseqConflict())
	if res.UB == nil || res.UB.Behavior != ub.UnseqSideEffect {
		t.Errorf("expected unsequenced-write axiom, got %v", res.UB)
	}
	// And the axiom respects sequence points: a defined program passes.
	ok := runWith(t, `
int main(void){
	int x = 0;
	x = 1;
	x = 2;
	return x - 2;
}
`, spec.NoUnseqConflict())
	if ok.UB != nil {
		t.Errorf("false positive: %v", ok.UB)
	}
}

func TestNeverCallAxiom(t *testing.T) {
	src := `
#include <stdlib.h>
int main(void){
	void *p = malloc(4);
	free(p);
	return 0;
}
`
	res := runWith(t, src, spec.NeverCall("malloc", ub.NullLibArg))
	if res.UB == nil || !strings.Contains(res.UB.Msg, "never-call-malloc") {
		t.Errorf("expected the call axiom, got %v", res.UB)
	}
	ok := runWith(t, "int main(void){ return 0; }", spec.NeverCall("malloc", ub.NullLibArg))
	if ok.UB != nil {
		t.Errorf("false positive: %v", ok.UB)
	}
}

func TestAxiomsComposeWithFullProfile(t *testing.T) {
	// Monitors also run alongside the full checker without changing
	// defined programs.
	res := undefc.RunSource(`
#include <stdio.h>
int main(void){ printf("ok\n"); return 0; }
`, "c.c", undefc.Options{Exec: interp.Options{
		Monitors: spec.Set{spec.NeverDerefNull(), spec.NeverDerefVoid(), spec.NoUnseqConflict()},
	}})
	if res.UB != nil || res.Err != nil || res.Output != "ok\n" {
		t.Errorf("defined program disturbed: %v %v %q", res.UB, res.Err, res.Output)
	}
}
