package search

// The per-run recorder: one instance is the run's Scheduler, its
// OperandTracker, and its Observer at once, so it sees every decision,
// every operand boundary, and every memory access of exactly one
// execution. From that triple view it reconstructs the run's choice
// points and attributes an effect footprint to each operand — the
// evidence partial-order reduction prunes (or refuses to prune) on.
//
// Structure recovery needs no protocol beyond what the interpreter
// already guarantees (see interp.OperandTracker): a scheduling point of
// fanout n draws its whole permutation eagerly — Pick(n), Pick(n−1), …,
// Pick(1) are contiguous, before any operand runs — so the first Pick
// after an operand phase opens a new innermost point, and each
// OperandDone closes one operand of the innermost open point. Fanout-1
// points make no Pick at all, so every logged decision belongs to a
// point with alternatives.

import (
	"strings"

	"repro/internal/interp"
	"repro/internal/obs"
)

// byteSpan is one contiguous footprint range: [off, off+n) on object obj.
type byteSpan struct {
	obj, off, n int64
}

func spansOverlap(a, b []byteSpan) bool {
	for i := range a {
		for j := range b {
			if a[i].obj == b[j].obj && a[i].off < b[j].off+b[j].n && b[j].off < a[i].off+a[i].n {
				return true
			}
		}
	}
	return false
}

// footprint is the observed effect set of one operand of one choice
// point. Reads and writes come from observer events; the flag effects
// come from counter deltas snapshotted around the operand (allocation,
// lifetime ends, address exposure, output) or from builtin calls (RNG,
// raw-memory builtins).
type footprint struct {
	reads  []byteSpan
	writes []byteSpan

	alloc  bool // allocated an object (IDs are order-sensitive)
	kills  bool // ended a lifetime (unevented effect; conflicts with all)
	output bool // wrote to the program's output stream
	rng    bool // advanced the rand() state
	synth  bool // exposed a synthetic object address as an integer
	// barrier marks an operand that passed a sequence point (a call's
	// §6.5.2.2:10 point, a comma, && … — anything that clears the
	// locsWrittenTo/locsRead sets). Moving a clear across a sibling's
	// accesses changes which accesses are still pending when a later
	// conflicting access is checked, so a barrier operand commutes only
	// with access-free siblings — even when every byte span is disjoint.
	barrier bool
	// universal marks an operand that called a builtin which touches
	// memory without observer events (memcpy, strcpy, printf's format
	// walk, …): its true footprint is unknown, so it conflicts with
	// every sibling.
	universal bool
}

// pureBuiltins are the builtins whose effect is fully captured by their
// evented argument reads: no raw o.Data access, no output, no RNG, no
// allocation. Everything else is treated as a universal conflict.
var pureBuiltins = map[string]bool{
	"abs": true, "labs": true,
	"isdigit": true, "isalpha": true, "isspace": true,
	"isupper": true, "islower": true,
	"toupper": true, "tolower": true,
}

// conflicts reports whether two operand footprints fail to commute: if it
// returns false, running them in either order reaches the same machine
// state and produces the same observables.
func (f *footprint) conflicts(g *footprint) bool {
	if f.universal || g.universal {
		return true
	}
	if f.kills || g.kills {
		return true // which object IDs die when is not tracked per byte
	}
	if f.alloc && g.alloc {
		return true // allocation order assigns observable object IDs
	}
	if f.output && g.output {
		return true // output interleaving is the observable itself
	}
	if f.rng && g.rng {
		return true // both advance the same RNG stream
	}
	if (f.synth && g.alloc) || (g.synth && f.alloc) {
		return true // exposed addresses observe allocation order
	}
	if (f.barrier && g.hasAccess()) || (g.barrier && f.hasAccess()) {
		return true // a sequence point flushes the sibling's pending accesses
	}
	return spansOverlap(f.writes, g.writes) ||
		spansOverlap(f.writes, g.reads) ||
		spansOverlap(f.reads, g.writes)
}

func (f *footprint) hasAccess() bool { return len(f.reads)+len(f.writes) > 0 }

// pointRec is one choice point of the run under reconstruction.
type pointRec struct {
	// firstPick is the log position of the point's Pick(n) — the node of
	// the decision tree the point sits at is identified by the pick path
	// up to (excluding) this position.
	firstPick int
	fanout    int
	// canonical reports that every decision of this point's group was 0
	// (the leftmost order) — only canonical visits carry POR bookkeeping
	// for the node, so each node is judged by exactly one order shape.
	canonical bool
	// complete reports that all fanout operands finished evaluating. A
	// run that errors mid-point leaves it incomplete, and an incomplete
	// point is never pruned (its unseen operands could conflict).
	complete bool
	done     int // operands finished so far = index of the current bucket
	ops      []footprint

	// Counter snapshots taken at the start of the current operand; the
	// deltas at OperandDone set the footprint's flag effects.
	objsSnap  int
	killsSnap int64
	synthSnap int64
	outSnap   int
}

func (pt *pointRec) snap(r *recorder) {
	st := r.in.MemStore()
	pt.objsSnap = st.NumObjects()
	pt.killsSnap = st.Kills()
	pt.synthSnap = r.in.SynthAddrCasts()
	pt.outSnap = r.sink.Len()
}

func (pt *pointRec) capture(r *recorder) {
	f := &pt.ops[pt.done]
	st := r.in.MemStore()
	if st.NumObjects() != pt.objsSnap {
		f.alloc = true
	}
	if st.Kills() != pt.killsSnap {
		f.kills = true
	}
	if r.in.SynthAddrCasts() != pt.synthSnap {
		f.synth = true
	}
	if r.sink.Len() != pt.outSnap {
		f.output = true
	}
	pt.done++
}

// conflicted reports whether any pair of the point's operands fails to
// commute. An incomplete point (a run error skipped an OperandDone)
// always conflicts: pruning needs positive evidence about every operand.
func (pt *pointRec) conflicted() bool {
	if !pt.complete {
		return true
	}
	for i := range pt.ops {
		for j := i + 1; j < len(pt.ops); j++ {
			if pt.ops[i].conflicts(&pt.ops[j]) {
				return true
			}
		}
	}
	return false
}

// recorder drives and observes one run.
type recorder struct {
	exp    *explorer
	prefix []int
	in     *interp.Interp
	sink   *strings.Builder

	log []interp.Choice
	pos int

	// track enables footprint reconstruction (set iff POR is on; the
	// recorder is also installed as the run's Observer only then).
	track bool

	stack  []*pointRec // open points, innermost last
	points []*pointRec // every point, in open (= firstPick) order

	// groupLeft counts the Picks still to be drawn for the innermost
	// point's permutation; 0 means the next Pick opens a new point.
	groupLeft int

	// dedupHit is the log position at which this run found its machine
	// state already owned by another run (-1: never). Expansion and POR
	// bookkeeping stop at this position — the owning run is responsible
	// for the subtree.
	dedupHit int
}

func newRecorder(e *explorer, prefix []int) *recorder {
	return &recorder{
		exp:      e,
		prefix:   prefix,
		sink:     &strings.Builder{},
		track:    e.por,
		dedupHit: -1,
	}
}

// Pick implements interp.Scheduler: replay the prefix, then leftmost —
// the same decision rule as interp.Trace — while reconstructing point
// structure.
func (r *recorder) Pick(n int) int {
	c := 0
	if r.pos < len(r.prefix) {
		c = r.prefix[r.pos]
	}
	if c >= n || c < 0 {
		c = 0
	}
	if r.groupLeft == 0 && n >= 2 {
		// First Pick of a new point's permutation draw.
		if r.exp.dedup && len(r.stack) == 0 && r.pos >= len(r.prefix) && r.dedupHit < 0 {
			// Top-level choice point in fresh territory: hash the machine
			// state; if another run owns it, the subtree below is theirs.
			key := r.in.StateDigest()
			key ^= hashOutput(r.sink.String())
			if !r.exp.claimState(key) {
				r.dedupHit = r.pos
			}
		}
		pt := &pointRec{firstPick: r.pos, fanout: n, canonical: true, ops: make([]footprint, n)}
		if r.track {
			pt.snap(r)
		}
		r.stack = append(r.stack, pt)
		r.points = append(r.points, pt)
		r.groupLeft = n
	}
	if r.groupLeft > 0 {
		r.groupLeft--
		top := r.stack[len(r.stack)-1]
		if c != 0 {
			top.canonical = false
		}
	}
	r.log = append(r.log, interp.Choice{N: n, Picked: c})
	r.pos++
	return c
}

// OperandDone implements interp.OperandTracker: one operand of the
// innermost open point finished.
func (r *recorder) OperandDone() {
	if len(r.stack) == 0 {
		return
	}
	top := r.stack[len(r.stack)-1]
	if r.track {
		top.capture(r)
	} else {
		top.done++
	}
	if top.done == top.fanout {
		top.complete = true
		r.stack = r.stack[:len(r.stack)-1]
		return
	}
	if r.track {
		top.snap(r)
	}
}

// Event implements obs.Observer: attribute each memory access (and each
// builtin's effect class) to the current operand of every open point —
// an access inside a nested point is part of the enclosing operand too.
func (r *recorder) Event(ev *obs.Event) {
	if !r.track || len(r.stack) == 0 {
		return
	}
	switch ev.Kind {
	case obs.EvRead:
		s := byteSpan{obj: ev.Obj, off: ev.Off, n: ev.Size}
		for _, pt := range r.stack {
			f := &pt.ops[pt.done]
			f.reads = append(f.reads, s)
		}
	case obs.EvWrite:
		s := byteSpan{obj: ev.Obj, off: ev.Off, n: ev.Size}
		for _, pt := range r.stack {
			f := &pt.ops[pt.done]
			f.writes = append(f.writes, s)
		}
	case obs.EvSeqPoint:
		// Conservative: a callee-internal sequence point only clears the
		// callee's own sets, but the event stream does not distinguish
		// activations, so every flush is treated as a caller barrier.
		for _, pt := range r.stack {
			pt.ops[pt.done].barrier = true
		}
	case obs.EvBuiltin:
		if pureBuiltins[ev.Name] {
			return
		}
		rng := ev.Name == "rand" || ev.Name == "srand"
		for _, pt := range r.stack {
			f := &pt.ops[pt.done]
			if rng {
				f.rng = true
			} else {
				f.universal = true
			}
		}
	}
}

func hashOutput(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
