package search_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/search"
)

// keySet reduces a result to its sorted outcome keys, the unit of
// comparison for every differential check in this package: two searches
// agree iff they found exactly the same behaviors, regardless of how many
// orders each had to run to find them.
func keySet(res search.Result) []string {
	keys := make([]string, 0, len(res.Outcomes))
	for _, o := range res.Outcomes {
		keys = append(keys, o.Key())
	}
	sort.Strings(keys)
	return keys
}

func sameKeys(a, b search.Result) bool {
	ka, kb := keySet(a), keySet(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// matrixPrograms are the order-sensitive shapes the search exists for;
// every engine × POR × dedup × parallelism combination must report the
// same behavior set as the sequential DFS oracle on each of them.
var matrixPrograms = []struct {
	name string
	src  string
}{
	{"setdenom", `
int d = 5;
int setDenom(int x){ return d = x; }
int main(void) { return (10/d) + setDenom(0); }
`},
	{"unseq_incr", `
int main(void) {
	int x = 1;
	return x + x++;
}
`},
	{"unseq_assign_pair", `
int main(void) {
	int x = 0;
	return (x = 1) + (x = 2);
}
`},
	{"order_dependent_calls", `
int x = 0;
int bump(void) { return ++x; }
int twice(void) { return x * 2; }
int main(void) { return bump() + twice(); }
`},
	{"commuting_pair", `
int a, b;
int main(void) {
	return (a = 1) + (b = 2);
}
`},
	{"nested_mixed", `
int a = 1, b = 2;
int f(void) { return a++; }
int main(void) {
	return (f() + b) * (b + 1);
}
`},
}

// TestExploreConfigMatrix is the in-package differential gate: for each
// order-sensitive program, the parallel explorer must produce the exact
// outcome set of the sequential DFS oracle under every configuration.
func TestExploreConfigMatrix(t *testing.T) {
	ctx := context.Background()
	for _, p := range matrixPrograms {
		prog := compile(t, p.src)
		for _, engine := range []string{"tree", "vm"} {
			oracle := search.ExploreDFS(ctx, prog, search.Options{MaxRuns: 4096, Engine: engine})
			if !oracle.Exhausted {
				t.Fatalf("%s/%s: oracle did not exhaust in 4096 runs", p.name, engine)
			}
			for _, por := range []bool{false, true} {
				for _, dedup := range []bool{false, true} {
					for _, par := range []int{1, 4} {
						name := fmt.Sprintf("%s/%s/por=%v/dedup=%v/j%d", p.name, engine, por, dedup, par)
						res := search.Explore(ctx, prog, search.Options{
							MaxRuns:     8192,
							Engine:      engine,
							Parallelism: par,
							POR:         por,
							Dedup:       dedup,
						})
						if !res.Exhausted {
							t.Errorf("%s: not exhausted after %d runs", name, res.Runs)
							continue
						}
						if !sameKeys(oracle, res) {
							t.Errorf("%s: outcome sets differ\noracle:  %v\nexplore: %v",
								name, keySet(oracle), keySet(res))
						}
						if res.Stats.Parallelism != par {
							t.Errorf("%s: stats parallelism = %d", name, res.Stats.Parallelism)
						}
					}
				}
			}
		}
	}
}

// deepNest builds a sum of n assignments to n distinct variables:
// (a0 = 1) + (a1 = 1) + ... — every evaluation order is defined and
// equivalent, but the plain search still has to enumerate all of them,
// which is exponential in n. All operand footprints are disjoint writes,
// so POR proves the whole nest commutes.
func deepNest(n int) string {
	var b strings.Builder
	b.WriteString("int ")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "a%d", i)
	}
	b.WriteString(";\nint main(void) {\n\treturn ")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "(a%d = 1)", i)
	}
	b.WriteString(";\n}\n")
	return b.String()
}

// TestPORCompletesWhereDFSExhausts is the PR's acceptance bar: a nest
// that blows the sequential searcher's 10000-run budget finishes
// exhaustively — in a handful of runs — once commuting interleavings are
// pruned.
func TestPORCompletesWhereDFSExhausts(t *testing.T) {
	const n = 15
	ctx := context.Background()
	prog := compile(t, deepNest(n))

	oracle := search.ExploreDFS(ctx, prog, search.Options{MaxRuns: 10000})
	if oracle.Exhausted {
		t.Fatalf("nest too shallow: DFS exhausted in %d runs", oracle.Runs)
	}

	res := search.Explore(ctx, prog, search.Options{MaxRuns: 10000, POR: true})
	if !res.Exhausted {
		t.Fatalf("POR search did not exhaust (%d runs)", res.Runs)
	}
	if res.Runs >= 100 {
		t.Errorf("POR should collapse the commuting nest to a few runs, ran %d", res.Runs)
	}
	if res.Stats.OrdersPruned == 0 {
		t.Error("no orders pruned on an all-commuting nest")
	}
	if ub := res.UB(); ub != nil {
		t.Fatalf("unexpected UB: %v", ub)
	}
	if len(res.Outcomes) != 1 {
		t.Fatalf("outcomes = %v, want exactly one", keySet(res))
	}
	if res.Outcomes[0].ExitCode != n {
		t.Errorf("exit = %d, want %d", res.Outcomes[0].ExitCode, n)
	}
}

// TestPORStillFindsUB plants one genuinely conflicting pair inside an
// otherwise commuting nest: pruning must not hide the undefined order.
func TestPORStillFindsUB(t *testing.T) {
	src := `
int a, b, c, x;
int main(void) {
	return (a = 1) + (b = 1) + (x = 1) + (x = 2) + (c = 1);
}
`
	ctx := context.Background()
	prog := compile(t, src)
	oracle := search.ExploreDFS(ctx, prog, search.Options{MaxRuns: 4096})
	if !oracle.Exhausted {
		t.Fatal("oracle did not exhaust")
	}
	res := search.Explore(ctx, prog, search.Options{MaxRuns: 4096, POR: true, Parallelism: 4})
	if !res.Exhausted {
		t.Fatalf("not exhausted (%d runs)", res.Runs)
	}
	if res.UB() == nil {
		t.Fatal("POR pruned away the unsequenced-write UB")
	}
	if !sameKeys(oracle, res) {
		t.Errorf("outcome sets differ\noracle:  %v\nexplore: %v", keySet(oracle), keySet(res))
	}
}

// TestDedupCollapsesConvergentStates: two back-to-back commuting pairs.
// Whatever order the first statement ran in, the store is identical at the
// second statement's choice point, so with dedup on the second subtree is
// explored once per distinct state, not once per path.
func TestDedupCollapsesConvergentStates(t *testing.T) {
	src := `
int a, b;
int main(void) {
	int r = (a = 1) + (b = 1);
	r += (a = 2) + (b = 2);
	return r;
}
`
	ctx := context.Background()
	prog := compile(t, src)
	oracle := search.ExploreDFS(ctx, prog, search.Options{MaxRuns: 4096})
	if !oracle.Exhausted {
		t.Fatal("oracle did not exhaust")
	}
	res := search.Explore(ctx, prog, search.Options{MaxRuns: 4096, Dedup: true, Parallelism: 2})
	if !res.Exhausted {
		t.Fatalf("not exhausted (%d runs)", res.Runs)
	}
	if !sameKeys(oracle, res) {
		t.Errorf("outcome sets differ\noracle:  %v\nexplore: %v", keySet(oracle), keySet(res))
	}
	if res.Stats.StatesDeduped == 0 {
		t.Error("expected converged states to be deduplicated")
	}
	if res.Runs >= oracle.Runs {
		t.Errorf("dedup ran %d orders, oracle ran %d — nothing was saved", res.Runs, oracle.Runs)
	}
}

// TestOnOutcomeStreams checks the streaming callback: invoked once per
// distinct behavior, with monotonically nondecreasing run counters, and
// in total agreement with the final result.
func TestOnOutcomeStreams(t *testing.T) {
	prog := compile(t, matrixPrograms[0].src)
	var got []string
	var lastRuns int64 = -1
	res := search.Explore(context.Background(), prog, search.Options{
		Parallelism: 4,
		POR:         true,
		OnOutcome: func(o search.Outcome, st search.Stats) {
			got = append(got, o.Key())
			if st.OrdersExplored < lastRuns {
				t.Errorf("stats went backwards: %d after %d", st.OrdersExplored, lastRuns)
			}
			lastRuns = st.OrdersExplored
		},
	})
	if len(got) != len(res.Outcomes) {
		t.Fatalf("callback fired %d times for %d outcomes", len(got), len(res.Outcomes))
	}
	sort.Strings(got)
	want := keySet(res)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("streamed set %v != result set %v", got, want)
		}
	}
}

// TestCanceledContext: a context canceled before the search starts must
// not be reported as exhaustive.
func TestCanceledContext(t *testing.T) {
	prog := compile(t, matrixPrograms[0].src)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := search.Explore(ctx, prog, search.Options{Parallelism: 4})
	if res.Exhausted {
		t.Error("canceled search claims exhaustion")
	}
	if res.Runs != 0 {
		t.Errorf("canceled search still ran %d orders", res.Runs)
	}
}

// TestDeprecatedContextOption: the pre-redesign Options.Context shim must
// keep working for callers that have not migrated to the ctx argument.
func TestDeprecatedContextOption(t *testing.T) {
	prog := compile(t, matrixPrograms[0].src)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	//lint:ignore SA1019 exercising the deprecated field on purpose
	res := search.Explore(nil, prog, search.Options{Context: ctx}) //nolint:staticcheck
	if res.Exhausted || res.Runs != 0 {
		t.Errorf("deprecated Context ignored: runs=%d exhausted=%v", res.Runs, res.Exhausted)
	}
}
