package search

// The parallel frontier explorer behind Explore.
//
// Work items are decision prefixes. A run with prefix P replays P and
// then picks leftmost (0) at every further choice, so one run covers the
// decision-tree path P·0·0·…; expansion enqueues, for every fresh
// position i (i ≥ len(P)) with branching factor n, the sibling prefixes
// picks[0..i)+[c] for c ≠ picks[i]. Every enqueued prefix ends in a
// non-zero decision, so each tree node has exactly one run responsible
// for expanding it — no node is enqueued twice.
//
// Partial-order reduction changes only the expansion step. A choice
// point visited in canonical (all-leftmost) order is judged by its
// operand footprints: if every pair of operands commutes, the siblings
// are deferred — provably, every sibling order reaches the same machine
// state, so only the count is recorded (OrdersPruned). The judgment is
// per tree *node*, registered in a path-keyed registry, because a point
// that looks independent on one visit can reveal a conflict on a later
// visit through the same node (a nested alternative changes what an
// operand does). The first visit that observes a conflict flips the node
// to expanded and enqueues all deferred siblings — late, but exactly
// once, and before any run that could need them exists (alternative runs
// below the node are only enqueued by runs that already went through
// this bookkeeping).
//
// Dedup changes only who is responsible: a run that reaches a top-level
// choice point whose machine state another run already claimed stops
// expanding from that position on — the claiming run owns the subtree.

import (
	"context"
	"encoding/binary"
	"strconv"
	"sync"

	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/sema"
)

// pointNode is the POR registry entry for one decision-tree node.
type pointNode struct {
	// expanded: a conflict was observed through this node; all sibling
	// orders are (or are being) enqueued, and later visits do nothing.
	expanded bool
	// pruned is the number of sibling branches currently deferred at
	// this node (rolled back if the node is later expanded).
	pruned int64
}

type explorer struct {
	prog    *sema.Program
	opts    Options
	ctx     context.Context
	maxRuns int
	por     bool
	dedup   bool

	// states is the dedup registry: machine-state digests, first claimer
	// owns the subtree. Accessed mid-run from worker goroutines, hence a
	// sync.Map rather than the explorer mutex.
	states sync.Map // uint64 → struct{}

	mu        sync.Mutex
	cond      *sync.Cond
	queue     [][]int
	pending   int // queued + in-flight work items
	runs      int
	truncated bool // budget hit, cancelled, or stopped at first UB
	stopped   bool // stop dispatching new work now
	seen      map[string]bool
	outcomes  []Outcome
	points    map[string]*pointNode // POR registry, keyed by pick path
	pruned    int64
	deduped   int64

	cbMu sync.Mutex // serializes OnOutcome
}

func newExplorer(ctx context.Context, prog *sema.Program, opts Options, maxRuns int) *explorer {
	e := &explorer{
		prog:    prog,
		opts:    opts,
		ctx:     ctx,
		maxRuns: maxRuns,
		por:     opts.POR,
		dedup:   opts.Dedup,
		seen:    make(map[string]bool),
		points:  make(map[string]*pointNode),
	}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// claimState registers a machine-state digest; it reports whether this
// run is the first claimer (and therefore owns the subtree).
func (e *explorer) claimState(key uint64) bool {
	_, loaded := e.states.LoadOrStore(key, struct{}{})
	return !loaded
}

// run seeds the frontier with the root prefix and blocks until the pool
// drains (or the search stops early).
func (e *explorer) run(par int) {
	e.queue = [][]int{{}}
	e.pending = 1
	var wg sync.WaitGroup
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.worker()
		}()
	}
	wg.Wait()
}

func (e *explorer) worker() {
	// One span per worker (not per run: a search performs thousands of
	// runs) so the tracing layer can follow an exploration across the
	// pool. Free when no collector is installed.
	_, sp := obs.StartSpan(e.ctx, "search.worker")
	runs := 0
	for {
		e.mu.Lock()
		for !e.stopped && e.pending > 0 && len(e.queue) == 0 {
			e.cond.Wait()
		}
		if e.stopped || e.pending == 0 {
			e.mu.Unlock()
			break
		}
		p := e.queue[len(e.queue)-1]
		e.queue = e.queue[:len(e.queue)-1]
		e.mu.Unlock()

		e.runOne(p)
		runs++

		e.mu.Lock()
		e.pending--
		done := e.pending == 0
		e.mu.Unlock()
		if done {
			e.cond.Broadcast()
		}
	}
	sp.SetAttr("runs", strconv.Itoa(runs))
	sp.End()
}

// runOne executes one prefix and folds the result (outcome, expansion,
// stats) into the shared state.
func (e *explorer) runOne(prefix []int) {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	if e.runs >= e.maxRuns {
		// The frontier still held work: the tree is not exhausted.
		e.truncated = true
		e.mu.Unlock()
		return
	}
	e.runs++
	e.mu.Unlock()

	if e.ctx.Err() != nil {
		e.cancelRun()
		return
	}

	rec := newRecorder(e, prefix)
	iopts := interp.Options{
		Engine:  e.opts.Engine,
		Sched:   rec,
		Out:     rec.sink,
		Budget:  interp.Budget{MaxSteps: e.opts.MaxSteps},
		Context: e.ctx,
	}
	if e.por {
		iopts.Observer = rec
	}
	in := interp.New(e.prog, iopts)
	rec.in = in
	runRes := in.RunMachine()
	if e.ctx.Err() != nil {
		// Interrupted mid-execution: the outcome is an artifact of the
		// cancellation, not a program behavior.
		e.cancelRun()
		return
	}

	out := Outcome{
		ExitCode: runRes.ExitCode,
		Output:   rec.sink.String(),
		UB:       runRes.UB,
		Err:      runRes.Err,
		Trace:    append([]int{}, prefix...),
	}

	var deliver bool
	var snap Stats
	e.mu.Lock()
	fresh := e.expandLocked(rec, e.maxRuns-e.runs-len(e.queue))
	if !e.stopped && len(fresh) > 0 {
		e.queue = append(e.queue, fresh...)
		e.pending += len(fresh)
	}
	if k := out.Key(); !e.seen[k] {
		e.seen[k] = true
		e.outcomes = append(e.outcomes, out)
		deliver = true
		if out.UB != nil && e.opts.StopAtFirstUB {
			e.stopped = true
			e.truncated = true
		}
	}
	if deliver && e.opts.OnOutcome != nil {
		snap = e.statsLocked()
	}
	e.mu.Unlock()
	e.cond.Broadcast()

	if deliver && e.opts.OnOutcome != nil {
		e.cbMu.Lock()
		e.opts.OnOutcome(out, snap)
		e.cbMu.Unlock()
	}
}

// cancelRun retracts a run the context interrupted and stops the pool.
func (e *explorer) cancelRun() {
	e.mu.Lock()
	e.runs--
	e.truncated = true
	e.stopped = true
	e.mu.Unlock()
	e.cond.Broadcast()
}

func (e *explorer) statsLocked() Stats {
	return Stats{
		OrdersExplored: int64(e.runs),
		OrdersPruned:   e.pruned,
		StatesDeduped:  e.deduped,
	}
}

// expandLocked turns one finished run into the sibling prefixes the
// frontier still needs, at most room of them. Called with e.mu held.
//
// The room cap is load-bearing, not cosmetic: a deep trace (a loop body
// with choice points) holds far more sibling prefixes than the remaining
// run budget, and each one copies its whole pick path — uncapped, a
// single 40k-point trace would materialize gigabytes of prefixes that
// the budget guarantees are dropped at claim time. Suppressing an append
// marks the search truncated, which is the verdict those drops would
// have produced anyway.
func (e *explorer) expandLocked(rec *recorder, room int) [][]int {
	p := len(rec.prefix)
	limit := len(rec.log)
	if rec.dedupHit >= 0 {
		// Another run owns the machine state from this position on; its
		// subtree — including POR bookkeeping for nodes inside it — is
		// that run's responsibility. Expanding here would duplicate the
		// owner's subtree under a different path.
		limit = rec.dedupHit
		e.deduped++
	}
	picks := make([]int, len(rec.log))
	for i, c := range rec.log {
		picks[i] = c.Picked
	}

	var fresh [][]int
	add := func(g, c int) {
		if len(fresh) >= room {
			e.truncated = true
			return
		}
		fresh = append(fresh, altPrefix(picks, g, c))
	}
	for _, pt := range rec.points {
		if pt.firstPick >= limit {
			break // points are in firstPick order
		}
		gEnd := pt.firstPick + pt.fanout // the point's Pick positions: [firstPick, gEnd)

		if e.por && pt.canonical {
			// Canonical visit: this run carries the node's POR judgment.
			key := pathKey(picks[:pt.firstPick])
			nd := e.points[key]
			if nd == nil {
				nd = &pointNode{}
				e.points[key] = nd
			}
			if nd.expanded {
				continue
			}
			if pt.conflicted() {
				// Conflict evidence (possibly found late, by a nested
				// alternative's visit): expand every deferred sibling of
				// the node, exactly once.
				nd.expanded = true
				e.pruned -= nd.pruned
				nd.pruned = 0
				for g := pt.firstPick; g < gEnd; g++ {
					n := rec.log[g].N
					for c := 1; c < n; c++ {
						add(g, c)
					}
				}
			} else if pt.firstPick >= p && nd.pruned == 0 {
				// Independent point, first (responsible) visit: defer the
				// siblings and record how many branches that suppressed.
				for g := pt.firstPick; g < gEnd; g++ {
					nd.pruned += int64(rec.log[g].N - 1)
				}
				e.pruned += nd.pruned
			}
			continue
		}

		// Plain expansion (POR off, or a non-canonical visit — whose
		// node was necessarily already expanded): enqueue siblings at
		// fresh positions only.
		for g := max(pt.firstPick, p); g < gEnd && g < limit; g++ {
			n := rec.log[g].N
			for c := 0; c < n; c++ {
				if c != picks[g] {
					add(g, c)
				}
			}
		}
	}
	return fresh
}

// altPrefix builds the sibling prefix picks[0..g) + [c].
func altPrefix(picks []int, g, c int) []int {
	pre := make([]int, g+1)
	copy(pre, picks[:g])
	pre[g] = c
	return pre
}

// pathKey encodes a pick path exactly (no hashing: a collision in the
// POR registry would silently merge two nodes and lose exploration).
func pathKey(picks []int) string {
	b := make([]byte, 0, 2*len(picks))
	for _, c := range picks {
		b = binary.AppendUvarint(b, uint64(c))
	}
	return string(b)
}
