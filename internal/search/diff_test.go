package search_test

import (
	"context"
	"testing"

	undefc "repro"
	"repro/internal/search"
	"repro/internal/suite"
)

// gateConfigs are the explorer configurations the differential gate holds
// to the sequential oracle. Parallelism 4 exercises the worker pool's
// frontier handoff; the dedup variant additionally exercises state-hash
// truncation of expansion responsibility.
var gateConfigs = []struct {
	name string
	opts search.Options
}{
	{"j4+por", search.Options{Parallelism: 4, POR: true}},
	{"j4+por+dedup", search.Options{Parallelism: 4, POR: true, Dedup: true}},
}

// TestDifferentialGate is the PR's soundness proof, wired into make check:
// over every suite case the oracle can exhaust, the parallel POR explorer
// must report the byte-identical outcome set, for both engines. Cases
// whose order tree the oracle cannot finish within budget are skipped (we
// cannot compare exhaustive sets we don't have); the gate fails if that
// leaves no order-sensitive case covered, so it cannot rot into a no-op.
func TestDifferentialGate(t *testing.T) {
	cases := append(suite.Juliet().Cases, suite.Own().Cases...)
	for _, p := range matrixPrograms {
		cases = append(cases, suite.Case{Name: "search_" + p.name, Source: p.src})
	}
	ctx := context.Background()
	for _, engine := range []string{"tree", "vm"} {
		t.Run(engine, func(t *testing.T) {
			var compared, withChoices, skipped int
			for i, c := range cases {
				if testing.Short() && i%7 != 0 {
					continue
				}
				prog, err := undefc.Compile(c.Source, c.Name+".c", undefc.Options{})
				if err != nil {
					continue
				}
				oracle := search.ExploreDFS(ctx, prog, search.Options{MaxRuns: 512, Engine: engine})
				if !oracle.Exhausted {
					skipped++
					continue
				}
				if oracle.Runs > 1 {
					withChoices++
				}
				for _, cfg := range gateConfigs {
					opts := cfg.opts
					opts.Engine = engine
					opts.MaxRuns = 4096
					res := search.Explore(ctx, prog, opts)
					if !res.Exhausted {
						t.Errorf("%s/%s: explorer did not exhaust where oracle did (%d runs)",
							c.Name, cfg.name, res.Runs)
						continue
					}
					if !sameKeys(oracle, res) {
						t.Errorf("%s/%s: outcome sets differ\noracle:  %v\nexplore: %v",
							c.Name, cfg.name, keySet(oracle), keySet(res))
					}
				}
				compared++
			}
			if compared == 0 || withChoices == 0 {
				t.Fatalf("gate vacuous: %d compared, %d with choice points", compared, withChoices)
			}
			t.Logf("gate: %d cases compared (%d with choice points, %d over oracle budget)",
				compared, withChoices, skipped)
		})
	}
}
