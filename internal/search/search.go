// Package search explores the unspecified evaluation orders of a C program
// (paper §2.5.2): "any tool seeking to identify all undefined behaviors
// must search all possible evaluation strategies."
//
// The interpreter consults a Scheduler at every unsequenced choice point;
// this driver enumerates the resulting decision tree. Two explorers share
// the Outcome/Result vocabulary:
//
//   - Explore: a parallel frontier search. Decision-trace prefixes fan out
//     over a bounded worker pool; each run replays its prefix and extends
//     it leftmost, and every fresh choice point it passes enqueues the
//     sibling prefixes. With Options.POR the search applies partial-order
//     reduction — sibling orders of a choice point whose operand
//     footprints commute (disjoint locsWrittenTo/locsRead byte ranges,
//     §4.2.1, and no order-sensitive effects) are pruned, soundly, because
//     commuting operands reach the same machine state in every order. With
//     Options.Dedup runs additionally hash the machine state at top-level
//     choice points and abandon subtrees another run already owns.
//   - ExploreDFS: the sequential depth-first enumeration, kept as the
//     oracle the differential gate compares Explore against. It visits
//     every leaf of the decision tree, no pruning, no concurrency.
//
// Each complete run is one evaluation order; the outcomes (exit codes,
// outputs, UB verdicts) are collected and deduplicated by behavior.
package search

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/interp"
	"repro/internal/sema"
	"repro/internal/ub"
)

// Outcome is one observed program behavior.
type Outcome struct {
	ExitCode int
	Output   string
	UB       *ub.Error
	Err      error
	// Trace is the decision prefix that produced this outcome.
	Trace []int
}

// Key canonicalizes the outcome for deduplication.
func (o Outcome) Key() string {
	switch {
	case o.UB != nil:
		return fmt.Sprintf("UB:%d:%s", o.UB.Behavior.Code, o.UB.Msg)
	case o.Err != nil:
		return "ERR:" + o.Err.Error()
	default:
		return fmt.Sprintf("OK:%d:%s", o.ExitCode, o.Output)
	}
}

// Options bound and shape the exploration.
type Options struct {
	// MaxRuns caps the number of executions (0 = 10000).
	MaxRuns int
	// MaxSteps bounds each single execution.
	MaxSteps int64
	// StopAtFirstUB ends the search as soon as any UB is found.
	StopAtFirstUB bool
	// Engine selects the execution engine for every run ("" or "tree":
	// the reference tree walker; "vm": pre-compiled closure code). The
	// engines make identical scheduler Pick sequences, so the decision
	// tree — and therefore the set of behaviors found — is the same;
	// "vm" just walks it faster, and the search amortizes one compile
	// over every explored order.
	Engine string
	// Parallelism is the number of worker goroutines executing runs
	// (0 or negative = GOMAXPROCS). Workers pull decision prefixes from a
	// shared frontier; every run is an independent interpreter instance,
	// so outcomes are byte-identical to a sequential search — only
	// discovery order varies.
	Parallelism int
	// POR enables partial-order reduction: a choice point whose operands
	// provably commute (disjoint read/write footprints, no allocation
	// pairs, no output, no RNG, no lifetime ends, no address exposure)
	// keeps only its canonical leftmost order. Pruning is evidence-driven
	// and fails open — any conflict, any run error, any effect the
	// recorder cannot attribute expands the point to all orders.
	POR bool
	// Dedup enables explored-state deduplication: at each top-level
	// choice point a run hashes the machine state (interp.StateDigest
	// mixed with the output so far) and, if another run already owns that
	// state, stops spawning alternatives below it. The digest is a
	// heuristic identity, so Dedup is an opt-in accelerator — leave it
	// off when exactness matters more than speed.
	Dedup bool
	// OnOutcome, when non-nil, is called once per distinct behavior, in
	// discovery order, with a stats snapshot taken at delivery time.
	// Calls are serialized (never concurrent) but may come from any
	// worker goroutine. A slow callback backpressures the search, which
	// is what a streaming consumer wants.
	OnOutcome func(Outcome, Stats)
	// Context is deprecated: pass the context to Explore instead. It is
	// honored (when Explore's ctx argument is nil) so existing callers
	// keep cancelling; new code should not set it.
	Context context.Context
}

// Stats counts the work an exploration did. The JSON shape is part of the
// /v1/explore wire format (trailer frames and the buffered response).
type Stats struct {
	// OrdersExplored is the number of complete executions performed.
	OrdersExplored int64 `json:"orders_explored"`
	// OrdersPruned is the number of sibling branches partial-order
	// reduction suppressed (decision-tree edges not taken, not leaves).
	OrdersPruned int64 `json:"orders_pruned"`
	// StatesDeduped is the number of runs that hit an already-owned
	// machine state and stopped spawning alternatives.
	StatesDeduped int64 `json:"states_deduped"`
	// WallNS is the wall-clock duration of the whole search.
	WallNS int64 `json:"wall_ns"`
	// Parallelism is the resolved worker count.
	Parallelism int `json:"parallelism"`
}

// Result aggregates a search.
type Result struct {
	// Outcomes are the distinct behaviors observed, in discovery order.
	Outcomes []Outcome
	// Runs is the number of executions performed.
	Runs int
	// Exhausted reports whether the whole decision tree was covered
	// (under POR: up to pruned orders, which provably reach no new
	// behavior).
	Exhausted bool
	// Stats breaks down the exploration work.
	Stats Stats
}

// UB returns the first undefined behavior among the outcomes, if any.
func (r *Result) UB() *ub.Error {
	for _, o := range r.Outcomes {
		if o.UB != nil {
			return o.UB
		}
	}
	return nil
}

// Deterministic reports whether every explored order produced the same
// behavior.
func (r *Result) Deterministic() bool { return len(r.Outcomes) <= 1 }

// Explore runs prog under every evaluation order (up to the budget),
// fanning runs out over Options.Parallelism workers. ctx cancels the
// search: in-flight runs stop at the next step poll and the frontier is
// abandoned, returning the outcomes observed so far with Exhausted false.
// A nil ctx falls back to the deprecated Options.Context, then to
// context.Background().
func Explore(ctx context.Context, prog *sema.Program, opts Options) Result {
	if ctx == nil {
		ctx = opts.Context
	}
	if ctx == nil {
		ctx = context.Background()
	}
	maxRuns := opts.MaxRuns
	if maxRuns == 0 {
		maxRuns = 10000
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	e := newExplorer(ctx, prog, opts, maxRuns)
	start := time.Now()
	e.run(par)
	res := Result{
		Outcomes:  e.outcomes,
		Runs:      e.runs,
		Exhausted: !e.truncated,
		Stats: Stats{
			OrdersExplored: int64(e.runs),
			OrdersPruned:   e.pruned,
			StatesDeduped:  e.deduped,
			WallNS:         time.Since(start).Nanoseconds(),
			Parallelism:    par,
		},
	}
	return res
}

// ExploreDFS enumerates the decision tree depth-first, sequentially, with
// no pruning and no deduplication — every leaf is executed. It is the
// oracle implementation: the differential gate asserts that Explore (with
// any Parallelism/POR/Dedup combination) finds exactly the outcome set
// ExploreDFS finds. Only MaxRuns, MaxSteps, StopAtFirstUB, and Engine are
// honored.
func ExploreDFS(ctx context.Context, prog *sema.Program, opts Options) Result {
	if ctx == nil {
		ctx = opts.Context
	}
	maxRuns := opts.MaxRuns
	if maxRuns == 0 {
		maxRuns = 10000
	}
	start := time.Now()
	var res Result
	defer func() {
		res.Stats.OrdersExplored = int64(res.Runs)
		res.Stats.WallNS = time.Since(start).Nanoseconds()
		res.Stats.Parallelism = 1
	}()
	seen := make(map[string]bool)

	// DFS over decision prefixes. The stack invariant: prefix is the next
	// decision sequence to force; after a run we extend/backtrack based on
	// the logged branching factors.
	prefix := []int{}
	for {
		if res.Runs >= maxRuns {
			return res
		}
		if ctx != nil && ctx.Err() != nil {
			return res
		}
		tr := &interp.Trace{Prefix: append([]int{}, prefix...)}
		runRes := interp.Run(prog, interp.Options{Engine: opts.Engine, Sched: tr, Budget: interp.Budget{MaxSteps: opts.MaxSteps}, Context: ctx})
		res.Runs++
		if ctx != nil && ctx.Err() != nil {
			// The run was interrupted mid-execution: its outcome is an
			// artifact of the cancellation, not a program behavior.
			res.Runs--
			return res
		}

		out := Outcome{
			ExitCode: runRes.ExitCode,
			Output:   runRes.Output,
			UB:       runRes.UB,
			Err:      runRes.Err,
			Trace:    append([]int{}, prefix...),
		}
		if k := out.Key(); !seen[k] {
			seen[k] = true
			res.Outcomes = append(res.Outcomes, out)
			if out.UB != nil && opts.StopAtFirstUB {
				return res
			}
		}

		// Compute the next prefix: find the deepest decision that can be
		// incremented.
		log := tr.Log
		next := make([]int, 0, len(log))
		for _, c := range log {
			next = append(next, c.Picked)
		}
		i := len(next) - 1
		for i >= 0 {
			if next[i]+1 < log[i].N {
				break
			}
			i--
		}
		if i < 0 {
			res.Exhausted = true
			return res
		}
		prefix = append(next[:i:i], next[i]+1)
	}
}
