// Package search explores the unspecified evaluation orders of a C program
// (paper §2.5.2): "any tool seeking to identify all undefined behaviors
// must search all possible evaluation strategies."
//
// The interpreter consults a Scheduler at every unsequenced choice point;
// this driver enumerates the resulting decision tree depth-first, replaying
// decision prefixes. Each leaf is one complete evaluation order; the
// outcomes (exit codes, outputs, UB verdicts) are collected and
// deduplicated.
package search

import (
	"context"
	"fmt"

	"repro/internal/interp"
	"repro/internal/sema"
	"repro/internal/ub"
)

// Outcome is one observed program behavior.
type Outcome struct {
	ExitCode int
	Output   string
	UB       *ub.Error
	Err      error
	// Trace is the decision prefix that produced this outcome.
	Trace []int
}

// Key canonicalizes the outcome for deduplication.
func (o Outcome) Key() string {
	switch {
	case o.UB != nil:
		return fmt.Sprintf("UB:%d:%s", o.UB.Behavior.Code, o.UB.Msg)
	case o.Err != nil:
		return "ERR:" + o.Err.Error()
	default:
		return fmt.Sprintf("OK:%d:%s", o.ExitCode, o.Output)
	}
}

// Options bound the exploration.
type Options struct {
	// MaxRuns caps the number of executions (0 = 10000).
	MaxRuns int
	// MaxSteps bounds each single execution.
	MaxSteps int64
	// StopAtFirstUB ends the search as soon as any UB is found.
	StopAtFirstUB bool
	// Engine selects the execution engine for every run ("" or "tree":
	// the reference tree walker; "vm": pre-compiled closure code). The
	// engines make identical scheduler Pick sequences, so the decision
	// tree — and therefore the set of behaviors found — is the same;
	// "vm" just walks it faster, and the search amortizes one compile
	// over every explored order.
	Engine string
	// Context, when non-nil, cancels the search: it is threaded into every
	// execution (interp.Options.Context, so an in-flight run stops at the
	// next step poll) and checked between runs. A cancelled search returns
	// the outcomes observed so far with Exhausted false — an adversarial
	// input can make the decision tree enormous, so callers under a
	// deadline get a partial answer, never a hang.
	Context context.Context
}

// Result aggregates a search.
type Result struct {
	// Outcomes are the distinct behaviors observed, in discovery order.
	Outcomes []Outcome
	// Runs is the number of executions performed.
	Runs int
	// Exhausted reports whether the whole decision tree was covered.
	Exhausted bool
}

// UB returns the first undefined behavior among the outcomes, if any.
func (r *Result) UB() *ub.Error {
	for _, o := range r.Outcomes {
		if o.UB != nil {
			return o.UB
		}
	}
	return nil
}

// Deterministic reports whether every explored order produced the same
// behavior.
func (r *Result) Deterministic() bool { return len(r.Outcomes) <= 1 }

// Explore runs prog under every evaluation order (up to the budget).
func Explore(prog *sema.Program, opts Options) Result {
	maxRuns := opts.MaxRuns
	if maxRuns == 0 {
		maxRuns = 10000
	}
	var res Result
	seen := make(map[string]bool)

	// DFS over decision prefixes. The stack invariant: prefix is the next
	// decision sequence to force; after a run we extend/backtrack based on
	// the logged branching factors.
	prefix := []int{}
	for {
		if res.Runs >= maxRuns {
			return res
		}
		if opts.Context != nil && opts.Context.Err() != nil {
			return res
		}
		tr := &interp.Trace{Prefix: append([]int{}, prefix...)}
		runRes := interp.Run(prog, interp.Options{Engine: opts.Engine, Sched: tr, Budget: interp.Budget{MaxSteps: opts.MaxSteps}, Context: opts.Context})
		res.Runs++
		if opts.Context != nil && opts.Context.Err() != nil {
			// The run was interrupted mid-execution: its outcome is an
			// artifact of the cancellation, not a program behavior.
			res.Runs--
			return res
		}

		out := Outcome{
			ExitCode: runRes.ExitCode,
			Output:   runRes.Output,
			UB:       runRes.UB,
			Err:      runRes.Err,
			Trace:    append([]int{}, prefix...),
		}
		if k := out.Key(); !seen[k] {
			seen[k] = true
			res.Outcomes = append(res.Outcomes, out)
			if out.UB != nil && opts.StopAtFirstUB {
				return res
			}
		}

		// Compute the next prefix: find the deepest decision that can be
		// incremented.
		log := tr.Log
		next := make([]int, 0, len(log))
		for _, c := range log {
			next = append(next, c.Picked)
		}
		i := len(next) - 1
		for i >= 0 {
			if next[i]+1 < log[i].N {
				break
			}
			i--
		}
		if i < 0 {
			res.Exhausted = true
			return res
		}
		prefix = append(next[:i:i], next[i]+1)
	}
}
