package search_test

import (
	"context"
	"testing"

	undefc "repro"
	"repro/internal/search"
	"repro/internal/ub"
)

func compile(t *testing.T, src string) *undefc.Program {
	t.Helper()
	prog, err := undefc.Compile(src, "test.c", undefc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestSetDenomSearch is the paper's §2.5.2 experiment: GCC's order runs
// fine, CompCert's order divides by zero; the search must find both.
func TestSetDenomSearch(t *testing.T) {
	prog := compile(t, `
int d = 5;
int setDenom(int x){
	return d = x;
}
int main(void) {
	return (10/d) + setDenom(0);
}
`)
	res := search.Explore(context.Background(), prog, search.Options{})
	if !res.Exhausted {
		t.Error("search should exhaust this small program")
	}
	if res.UB() == nil {
		t.Fatal("search must find the division by zero on some order")
	}
	if res.UB().Behavior != ub.DivByZero {
		t.Errorf("found %v", res.UB())
	}
	// Both a defined outcome and the UB outcome exist.
	var okSeen bool
	for _, o := range res.Outcomes {
		if o.UB == nil && o.Err == nil {
			okSeen = true
			if o.ExitCode != 2 {
				t.Errorf("defined outcome exit = %d, want 2", o.ExitCode)
			}
		}
	}
	if !okSeen {
		t.Error("the defined (left-to-right) outcome must also be found")
	}
}

func TestDeterministicProgram(t *testing.T) {
	prog := compile(t, `
int main(void) {
	int a = 2, b = 3;
	return a + b;
}
`)
	res := search.Explore(context.Background(), prog, search.Options{})
	if !res.Deterministic() {
		t.Errorf("got %d outcomes", len(res.Outcomes))
	}
	if res.UB() != nil {
		t.Errorf("unexpected UB: %v", res.UB())
	}
	if !res.Exhausted {
		t.Error("search should exhaust")
	}
}

// TestOrderDependentResult: unspecified order can change the result without
// undefinedness being detected on either order (x read and written in
// different full expressions is fine; here two calls with side effects give
// different sums — still unspecified, not undefined, because function calls
// are indeterminately sequenced, not unsequenced).
func TestOrderDependentResult(t *testing.T) {
	prog := compile(t, `
int x = 0;
int bump(void) { return ++x; }
int twice(void) { return x * 2; }
int main(void) {
	return bump() + twice();
}
`)
	res := search.Explore(context.Background(), prog, search.Options{})
	if len(res.Outcomes) < 2 {
		t.Errorf("expected order-dependent outcomes, got %d", len(res.Outcomes))
	}
	for _, o := range res.Outcomes {
		if o.UB != nil {
			t.Errorf("no UB expected, got %v", o.UB)
		}
	}
}

func TestUnseqFoundOnSomeOrder(t *testing.T) {
	// x + x++ : caught only when the read happens after the ++ writes, or
	// vice versa; the search must find it regardless of default order.
	prog := compile(t, `
int main(void) {
	int x = 1;
	return x + x++;
}
`)
	res := search.Explore(context.Background(), prog, search.Options{})
	if res.UB() == nil {
		t.Fatal("search must find the unsequenced read/write")
	}
}

func TestMaxRunsBudget(t *testing.T) {
	// Many independent binary choices: the tree is big; the budget stops
	// the search cleanly.
	prog := compile(t, `
int f(int x) { return x; }
int main(void) {
	int s = 0;
	for (int i = 0; i < 20; i++) s += f(1) + f(2);
	return s - 60;
}
`)
	res := search.Explore(context.Background(), prog, search.Options{MaxRuns: 7})
	if res.Runs > 7 {
		t.Errorf("runs = %d, budget was 7", res.Runs)
	}
	if res.Exhausted {
		t.Error("must not claim exhaustion under budget")
	}
}

func TestStopAtFirstUB(t *testing.T) {
	prog := compile(t, `
int main(void) {
	int x = 0;
	return (x = 1) + (x = 2);
}
`)
	res := search.Explore(context.Background(), prog, search.Options{StopAtFirstUB: true})
	if res.UB() == nil {
		t.Fatal("expected UB")
	}
	if res.Runs != 1 {
		t.Errorf("should stop after first run, ran %d", res.Runs)
	}
}
