package search_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	undefc "repro"
	"repro/internal/search"
)

// genExpr renders a random expression from fuzz bytes: leaves mix reads,
// unsequenced writes, compound assignment and calls with side effects, so
// generated programs land on both sides of the defined/undefined fence.
// Depth is capped at 2 (≤4 leaves) to keep every order tree inside the
// sequential oracle's budget — a skipped-too-big input teaches the fuzzer
// nothing.
func genExpr(r *bytes.Reader, depth int) string {
	b, err := r.ReadByte()
	if err != nil {
		return "1"
	}
	if depth < 2 {
		switch b % 8 {
		case 0:
			return "(" + genExpr(r, depth+1) + " + " + genExpr(r, depth+1) + ")"
		case 1:
			return "(" + genExpr(r, depth+1) + " * " + genExpr(r, depth+1) + ")"
		case 2:
			return "(" + genExpr(r, depth+1) + " - " + genExpr(r, depth+1) + ")"
		}
	}
	switch b % 10 {
	case 0:
		return "a"
	case 1:
		return "b"
	case 2:
		return "c"
	case 3:
		return fmt.Sprintf("(a = %d)", int(b)%5)
	case 4:
		return fmt.Sprintf("(b += %d)", int(b)%3)
	case 5:
		return "a++"
	case 6:
		return "++b"
	case 7:
		return "f()"
	case 8:
		return "g(a)"
	default:
		return fmt.Sprintf("%d", int(b)%7)
	}
}

func genProgram(data []byte) string {
	r := bytes.NewReader(data)
	var sb strings.Builder
	sb.WriteString("int a = 1, b = 2, c = 3;\n")
	sb.WriteString("int f(void) { return a++; }\n")
	sb.WriteString("int g(int x) { return x + b; }\n")
	sb.WriteString("int main(void) {\n\treturn " + genExpr(r, 0) + ";\n}\n")
	return sb.String()
}

// FuzzExploreDiff cross-checks the parallel POR explorer against the
// sequential DFS oracle on randomly generated expression nests: whenever
// the oracle can enumerate the whole order tree, every explorer
// configuration must report the identical outcome set. Wired into
// make fuzz-smoke.
func FuzzExploreDiff(f *testing.F) {
	f.Add([]byte{0, 3, 3})             // (a=..) + (a=..): unsequenced writes
	f.Add([]byte{0, 5, 0})             // a++ + a: unsequenced read/write
	f.Add([]byte{1, 7, 4})             // f() * (b+=..): order-dependent calls
	f.Add([]byte{2, 0, 3, 9, 0, 8, 5}) // nested mixed
	f.Add([]byte{0, 0, 3, 4, 0, 5, 6}) // four side-effecting leaves
	f.Fuzz(func(t *testing.T, data []byte) {
		src := genProgram(data)
		prog, err := undefc.Compile(src, "fuzz.c", undefc.Options{})
		if err != nil {
			t.Skip()
		}
		ctx := context.Background()
		oracle := search.ExploreDFS(ctx, prog, search.Options{MaxRuns: 512, MaxSteps: 50000})
		if !oracle.Exhausted {
			t.Skip()
		}
		for _, cfg := range gateConfigs {
			opts := cfg.opts
			opts.MaxRuns = 4096
			opts.MaxSteps = 50000
			res := search.Explore(ctx, prog, opts)
			if !res.Exhausted {
				t.Fatalf("%s: explorer did not exhaust where oracle did (%d runs)\n%s",
					cfg.name, res.Runs, src)
			}
			if !sameKeys(oracle, res) {
				t.Fatalf("%s: outcome sets differ\noracle:  %v\nexplore: %v\n%s",
					cfg.name, keySet(oracle), keySet(res), src)
			}
		}
	})
}
