// Package obs is the observability layer of the analysis pipeline: typed
// execution events emitted by the abstract machine (and the surrounding
// driver/runner plumbing), aggregated into counters and histograms that the
// export layer renders as one canonical machine-readable report.
//
// The paper's evaluation (§5.1.2, Figures 2–3) is an aggregate of per-run
// behavior — which checks fired, how much work each tool's profile did,
// where interpreter time went. This package makes that behavior inspectable
// per run: an Observer hooked into interp.Options receives every step,
// memory access, sequence-point flush, UB-check evaluation, scheduler
// choice, and builtin call; Metrics turns the stream into counters;
// Snapshot is the mergeable, JSON-stable result.
//
// The contract with the emitter is strict so the no-observer fast path
// stays free: a nil Observer means no events are constructed at all (one
// nil check per site), and the *Event passed to Event is reused by the
// emitter — observers must copy what they keep.
package obs

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/token"
	"repro/internal/ub"
)

// EventKind discriminates the typed events of the pipeline.
type EventKind uint8

// Event kinds.
const (
	// EvStep: the interpreter charged one unit of its step budget.
	EvStep EventKind = iota
	// EvRead / EvWrite: a checked, typed memory access of Size bytes on an
	// object of the given AccessClass.
	EvRead
	EvWrite
	// EvSeqPoint: the locsWrittenTo/locsRead sets were flushed (§4.2.1);
	// Size carries the number of locations discarded.
	EvSeqPoint
	// EvCheck: one UB check was evaluated against Behavior; Fired reports
	// whether it detected undefined behavior (false = the check passed).
	EvCheck
	// EvSched: the scheduler chose an evaluation order among Fanout
	// unsequenced operands, starting with operand Choice (§2.5.2).
	EvSched
	// EvBuiltin: a library builtin named Name was called.
	EvBuiltin
	// EvCacheHit / EvCacheMiss: the shared compile cache served (or had to
	// compile) the translation unit named Name.
	EvCacheHit
	EvCacheMiss
	// EvFault: a pipeline panic was contained in the stage named Name while
	// processing the unit in Detail (the fault-containment layer's event).
	EvFault

	numEventKinds = iota
)

func (k EventKind) String() string {
	switch k {
	case EvStep:
		return "step"
	case EvRead:
		return "read"
	case EvWrite:
		return "write"
	case EvSeqPoint:
		return "seqpoint"
	case EvCheck:
		return "check"
	case EvSched:
		return "sched"
	case EvBuiltin:
		return "builtin"
	case EvCacheHit:
		return "cache-hit"
	case EvCacheMiss:
		return "cache-miss"
	case EvFault:
		return "fault"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// AccessClass classifies the object a memory access touched, mirroring the
// storage-duration split the detection profiles care about (a Valgrind-style
// checker watches the heap but not the stack, §5.1).
type AccessClass uint8

// Access classes.
const (
	ClassStatic AccessClass = iota // file-scope and static-local objects
	ClassAuto                      // block-scope automatic objects
	ClassHeap                      // malloc/calloc/realloc results
	ClassFunc                      // function designators
	ClassString                    // string literals

	numAccessClasses = iota
)

func (c AccessClass) String() string {
	switch c {
	case ClassStatic:
		return "static"
	case ClassAuto:
		return "auto"
	case ClassHeap:
		return "heap"
	case ClassFunc:
		return "func"
	case ClassString:
		return "string"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Event is one typed observation. Only the fields relevant to Kind are set;
// the emitter reuses the struct across calls, so observers MUST NOT retain
// the pointer (copy the value instead).
type Event struct {
	Kind EventKind
	Pos  token.Pos

	// EvRead/EvWrite: Class and Size (bytes). EvSeqPoint: Size (locations
	// flushed).
	Class AccessClass
	Size  int64

	// EvRead/EvWrite: the accessed object and the starting byte offset
	// within it — the per-access footprint [Off, Off+Size) on object Obj.
	// Obj is the mem.ObjID widened to a plain integer so observers can
	// track footprints without importing the memory package. Together with
	// Size this is exactly the locsWrittenTo/locsRead byte-range shape the
	// sequence-point state uses (§4.2.1), which is what makes the event
	// stream usable as a partial-order-reduction independence relation.
	Obj int64
	Off int64

	// EvCheck: the behavior checked and whether it fired.
	Behavior *ub.Behavior
	Fired    bool

	// EvSched: the index chosen first among Fanout operands.
	Choice int
	Fanout int

	// EvBuiltin/EvCacheHit/EvCacheMiss: the builtin or file name.
	// EvFault: the pipeline stage that panicked.
	Name string

	// EvFault: the unit being processed when the fault was contained.
	Detail string
}

// String renders the event in the one-line trace form of kcc -trace.
func (e *Event) String() string {
	switch e.Kind {
	case EvStep:
		return fmt.Sprintf("step %s", e.Pos)
	case EvRead, EvWrite:
		return fmt.Sprintf("%s %s %dB %s", e.Kind, e.Class, e.Size, e.Pos)
	case EvSeqPoint:
		return fmt.Sprintf("seqpoint flush=%d", e.Size)
	case EvCheck:
		verdict := "pass"
		if e.Fired {
			verdict = "FIRE"
		}
		return fmt.Sprintf("check %s %05d §%s %s", verdict, e.Behavior.Code, e.Behavior.Section, e.Pos)
	case EvSched:
		return fmt.Sprintf("sched pick %d/%d", e.Choice, e.Fanout)
	case EvBuiltin:
		return fmt.Sprintf("builtin %s %s", e.Name, e.Pos)
	case EvCacheHit, EvCacheMiss:
		return fmt.Sprintf("%s %s", e.Kind, e.Name)
	case EvFault:
		return fmt.Sprintf("FAULT contained in %s (%s)", e.Name, e.Detail)
	}
	return e.Kind.String()
}

// Observer receives the event stream. Implementations must treat the
// *Event as borrowed: it is invalid after Event returns.
type Observer interface {
	Event(ev *Event)
}

// Multi fans one event stream out to several observers, dropping nils. It
// returns nil when every argument is nil — preserving the emitter's
// nil-observer fast path — and the observer itself when only one remains.
func Multi(obs ...Observer) Observer {
	var live multi
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

type multi []Observer

func (m multi) Event(ev *Event) {
	for _, o := range m {
		o.Event(ev)
	}
}

// Tracer streams events as one line each — the kcc -trace implementation.
// Steps are suppressed unless Steps is set (they dominate the stream).
// Safe for concurrent emitters.
type Tracer struct {
	W io.Writer
	// Steps includes EvStep events (very noisy: one line per evaluation).
	Steps bool

	mu sync.Mutex
	n  int64
}

// Event implements Observer.
func (t *Tracer) Event(ev *Event) {
	if ev.Kind == EvStep && !t.Steps {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.n++
	fmt.Fprintf(t.W, "[obs %6d] %s\n", t.n, ev)
}

// Recorder copies every event — the golden-test observer.
type Recorder struct {
	mu     sync.Mutex
	Events []Event
}

// Event implements Observer.
func (r *Recorder) Event(ev *Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Events = append(r.Events, *ev)
}

// Lines renders the recorded stream in trace form, one string per event.
func (r *Recorder) Lines() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.Events))
	for i := range r.Events {
		out[i] = r.Events[i].String()
	}
	return out
}
