package obs

// Request tracing in the Dapper style: a request owns a 64-bit trace ID,
// every pipeline stage it touches opens a Span linked to its parent, and a
// Collector receives each span as it ends. The trace context travels
// inside a context.Context, so it crosses the same API boundaries the
// cancellation signal already does (server handler → admission queue →
// coalescer → runner cell → driver compile → interp execute) without any
// new parameters.
//
// The discipline matches the nil-Observer fast path of the event stream:
// when no collector is installed on the context, StartSpan returns the
// context unchanged and a nil *Span, every *Span method is a nil-safe
// no-op, and nothing is allocated — asserted by BenchmarkSpanOverhead and
// TestSpanNoCollectorAllocs, and gated in `make check`. Tracing is
// therefore cheap enough to leave compiled into every stage and armed only
// per sampled request.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Collector receives spans as they end. Implementations must be safe for
// concurrent use: spans from parallel workers of one trace end on
// different goroutines.
type Collector interface {
	CollectSpan(s *Span)
}

// Attr is one key/value span attribute ("tool", "verdict", "cache", ...).
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// Span is one timed, named stage of a traced request. IDs are unique per
// process; Parent is zero on the root span of a trace.
type Span struct {
	TraceID uint64
	ID      uint64
	Parent  uint64
	Name    string
	Start   time.Time
	Dur     time.Duration
	Attrs   []Attr

	col Collector
}

// SetAttr records one attribute. Nil-safe: callers that would pay to
// format a value should check Recording first.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: val})
}

// Recording reports whether the span is live (non-nil), so call sites can
// skip formatting attribute values for untraced requests.
func (s *Span) Recording() bool { return s != nil }

// End stamps the duration and hands the span to its collector. Nil-safe;
// call exactly once per live span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Dur = time.Since(s.Start)
	if s.col != nil {
		s.col.CollectSpan(s)
	}
}

// traceCtxKey keys the active trace state in a context.Context.
type traceCtxKey struct{}

// traceCtx is the per-context trace state: where spans go, which trace
// they belong to, and which span is the current parent.
type traceCtx struct {
	col     Collector
	traceID uint64
	parent  uint64
}

var (
	spanIDs  atomic.Uint64
	traceIDs atomic.Uint64
)

func init() {
	// Seed the trace-ID sequence from the clock so IDs from successive
	// daemon runs do not collide in shared dashboards; within a process the
	// golden-ratio stride keeps successive IDs far apart.
	traceIDs.Store(uint64(time.Now().UnixNano()))
}

// NewTraceID returns a fresh non-zero 64-bit trace identifier.
func NewTraceID() uint64 {
	for {
		if id := traceIDs.Add(0x9e3779b97f4a7c15); id != 0 {
			return id
		}
	}
}

// FormatTraceID renders a trace ID the way the service exposes it
// (16 hex digits, the /v1/trace/{id} path segment).
func FormatTraceID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseTraceID is the inverse of FormatTraceID.
func ParseTraceID(s string) (uint64, error) {
	var id uint64
	if _, err := fmt.Sscanf(s, "%x", &id); err != nil {
		return 0, fmt.Errorf("bad trace id %q: %w", s, err)
	}
	return id, nil
}

// WithTrace installs a collector and a fresh trace ID on ctx: subsequent
// StartSpan calls down this context chain record spans into col. It
// returns the derived context and the trace ID.
func WithTrace(ctx context.Context, col Collector) (context.Context, uint64) {
	id := NewTraceID()
	return context.WithValue(ctx, traceCtxKey{}, &traceCtx{col: col, traceID: id}), id
}

// WithTraceID installs a collector on ctx under an externally assigned
// trace ID. It exists for cross-process trace propagation: a cluster
// router samples a request, stamps the ID on the forwarded hop
// (X-Undefc-Trace-Id), and the shard adopts it here — so the spans the
// shard records land under the identity the client was told, whichever
// shard (or how many, across failovers) ends up serving the request.
func WithTraceID(ctx context.Context, col Collector, id uint64) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, &traceCtx{col: col, traceID: id})
}

// RebindTrace copies the trace state of src onto dst. It exists for the
// detach pattern: a server that severs a request's cancellation (so
// coalesced followers are not killed by the leader's client hanging up)
// still wants the detached work traced under the original request.
func RebindTrace(dst, src context.Context) context.Context {
	if tc, ok := src.Value(traceCtxKey{}).(*traceCtx); ok {
		return context.WithValue(dst, traceCtxKey{}, tc)
	}
	return dst
}

// StartSpan opens a span named name under ctx's current parent and returns
// a derived context in which the new span is the parent. When ctx carries
// no trace (the always-on fast path), it returns ctx unchanged and a nil
// span, and allocates nothing.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	tc, _ := ctx.Value(traceCtxKey{}).(*traceCtx)
	if tc == nil {
		return ctx, nil
	}
	s := &Span{
		TraceID: tc.traceID,
		ID:      spanIDs.Add(1),
		Parent:  tc.parent,
		Name:    name,
		Start:   time.Now(),
		col:     tc.col,
	}
	return context.WithValue(ctx, traceCtxKey{}, &traceCtx{col: tc.col, traceID: tc.traceID, parent: s.ID}), s
}

// TeeCollector fans each completed span out to several collectors,
// dropping nils — the span-side Multi. It returns nil when every argument
// is nil (preserving the no-collector fast path) and the collector itself
// when only one remains. The server tees spans into its TraceBuffer (the
// whole-trace store behind /v1/trace) and its SpanRing (the per-span
// store behind /v1/spans) this way.
func TeeCollector(cols ...Collector) Collector {
	var live teeCollector
	for _, c := range cols {
		if c != nil {
			live = append(live, c)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

type teeCollector []Collector

func (t teeCollector) CollectSpan(s *Span) {
	for _, c := range t {
		c.CollectSpan(s)
	}
}

// SpanBuffer is the simplest collector: it keeps every span, in end order.
// The CLIs use it to write one whole-process trace file (-trace-out).
type SpanBuffer struct {
	mu    sync.Mutex
	spans []*Span
}

// CollectSpan implements Collector.
func (b *SpanBuffer) CollectSpan(s *Span) {
	b.mu.Lock()
	b.spans = append(b.spans, s)
	b.mu.Unlock()
}

// Spans returns the collected spans in end order.
func (b *SpanBuffer) Spans() []*Span {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]*Span{}, b.spans...)
}

// TraceBuffer retains the span trees of the last Cap completed traces —
// the store behind the service's GET /v1/trace/{id}. A trace completes
// when its root span (Parent == 0) ends; completed traces are evicted
// oldest-first beyond Cap. Callers must eventually end the root of every
// trace they start (the server does so in a handler defer), or the entry
// stays in the open set.
type TraceBuffer struct {
	mu     sync.Mutex
	cap    int
	traces map[uint64][]*Span
	order  []uint64 // completion order of finished traces
}

// NewTraceBuffer returns a buffer retaining up to cap completed traces
// (cap <= 0 means 128).
func NewTraceBuffer(cap int) *TraceBuffer {
	if cap <= 0 {
		cap = 128
	}
	return &TraceBuffer{cap: cap, traces: make(map[uint64][]*Span)}
}

// CollectSpan implements Collector.
func (b *TraceBuffer) CollectSpan(s *Span) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.traces[s.TraceID] = append(b.traces[s.TraceID], s)
	if s.Parent != 0 {
		return
	}
	// Root ended: the trace is complete.
	b.order = append(b.order, s.TraceID)
	for len(b.order) > b.cap {
		delete(b.traces, b.order[0])
		b.order = b.order[1:]
	}
}

// Get returns the spans of a completed or in-flight trace (end order), or
// nil when the ID is unknown or already evicted.
func (b *TraceBuffer) Get(id uint64) []*Span {
	b.mu.Lock()
	defer b.mu.Unlock()
	spans := b.traces[id]
	if spans == nil {
		return nil
	}
	return append([]*Span{}, spans...)
}

// Len reports the number of retained traces (completed and in-flight).
func (b *TraceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.traces)
}
