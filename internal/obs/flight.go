package obs

// The flight recorder: a fixed-size ring of the most recent events of one
// analysis, kept so that when the fault-containment layer quarantines a
// panic (or a watchdog fires), the failure manifest can say not just
// "crashed at interp.step" but "here are the last N things the abstract
// machine did". It is an Observer like any other and composes with Metrics
// and Tracer via Multi; because it is per-request, it retains only its own
// request's events, never a neighbor's.

import "sync"

// DefaultFlightEvents is the ring capacity callers use when they enable
// flight recording without picking a size.
const DefaultFlightEvents = 256

// Flight is a ring buffer of the last N events. Safe for concurrent use,
// though a single analysis emits from one goroutine.
type Flight struct {
	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever observed
}

// NewFlight returns a recorder retaining the last n events (n <= 0 means
// DefaultFlightEvents).
func NewFlight(n int) *Flight {
	if n <= 0 {
		n = DefaultFlightEvents
	}
	return &Flight{buf: make([]Event, n)}
}

// Event implements Observer: the event is copied into the ring (the
// emitter reuses the pointer).
func (f *Flight) Event(ev *Event) {
	f.mu.Lock()
	f.buf[f.total%uint64(len(f.buf))] = *ev
	f.total++
	f.mu.Unlock()
}

// Len reports how many events the ring currently holds.
func (f *Flight) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.total < uint64(len(f.buf)) {
		return int(f.total)
	}
	return len(f.buf)
}

// Dropped reports how many events were overwritten (observed beyond the
// ring's capacity).
func (f *Flight) Dropped() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.total < uint64(len(f.buf)) {
		return 0
	}
	return f.total - uint64(len(f.buf))
}

// Tail returns the retained events, oldest first.
func (f *Flight) Tail() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := uint64(len(f.buf))
	if f.total < n {
		return append([]Event{}, f.buf[:f.total]...)
	}
	out := make([]Event, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, f.buf[(f.total+i)%n])
	}
	return out
}

// Lines renders the retained events in trace form, oldest first — the
// shape attached to failure manifests.
func (f *Flight) Lines() []string {
	tail := f.Tail()
	out := make([]string, len(tail))
	for i := range tail {
		out[i] = tail[i].String()
	}
	return out
}
