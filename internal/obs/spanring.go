package obs

// SpanRing is the per-process span store behind GET /v1/spans/{trace}: a
// bounded, lock-free ring of completed spans, indexed on read by trace
// ID. Writers (span End calls from any goroutine) pay one atomic counter
// bump and one pointer swap; there is no lock anywhere, so a hot serving
// path never queues behind a trace read.
//
// Two bounds apply. The slot count caps span *count* (the ring overwrites
// oldest-first once full), and the byte budget caps retained *memory*:
// when the estimated resident bytes exceed the budget, the writer
// reclaims oldest slots until back under. Both bounds degrade by
// forgetting the oldest spans, never by blocking or failing a write.

import (
	"sort"
	"sync/atomic"
)

// DefaultSpanRingSlots and DefaultSpanRingBytes size the serving ring:
// 4096 spans / 4 MiB holds several hundred recent traces.
const (
	DefaultSpanRingSlots = 4096
	DefaultSpanRingBytes = 4 << 20
)

// SpanRing retains the most recent completed spans within a slot and
// byte budget. The zero value is not usable; construct with NewSpanRing.
type SpanRing struct {
	slots  []atomic.Pointer[Span]
	mask   uint64
	head   atomic.Uint64 // next logical write position
	tail   atomic.Uint64 // oldest logical position not yet reclaimed
	bytes  atomic.Int64
	budget int64
}

// NewSpanRing builds a ring with the given slot count (rounded up to a
// power of two; <= 0 means DefaultSpanRingSlots) and byte budget (<= 0
// means DefaultSpanRingBytes).
func NewSpanRing(slots int, byteBudget int64) *SpanRing {
	if slots <= 0 {
		slots = DefaultSpanRingSlots
	}
	n := 1
	for n < slots {
		n <<= 1
	}
	if byteBudget <= 0 {
		byteBudget = DefaultSpanRingBytes
	}
	return &SpanRing{slots: make([]atomic.Pointer[Span], n), mask: uint64(n - 1), budget: byteBudget}
}

// spanCost estimates a span's resident bytes: the struct, its name, and
// its attributes.
func spanCost(s *Span) int64 {
	c := int64(96) + int64(len(s.Name))
	for _, a := range s.Attrs {
		c += int64(32 + len(a.Key) + len(a.Val))
	}
	return c
}

// CollectSpan implements Collector: store a copy of the span, overwrite
// the oldest entry when the ring is full, then reclaim oldest slots while
// over the byte budget.
func (r *SpanRing) CollectSpan(s *Span) {
	cp := *s
	cp.col = nil
	cost := spanCost(&cp)
	idx := r.head.Add(1) - 1
	if old := r.slots[idx&r.mask].Swap(&cp); old != nil {
		cost -= spanCost(old)
	}
	r.bytes.Add(cost)
	for r.bytes.Load() > r.budget {
		t := r.tail.Load()
		h := r.head.Load()
		if t+uint64(len(r.slots)) < h {
			// The ring already lapped this position; the overwrite above
			// accounted its bytes. Catch the tail up.
			r.tail.CompareAndSwap(t, h-uint64(len(r.slots)))
			continue
		}
		if t >= h {
			break // nothing left to reclaim
		}
		if !r.tail.CompareAndSwap(t, t+1) {
			continue // another writer reclaimed it
		}
		if old := r.slots[t&r.mask].Swap(nil); old != nil {
			r.bytes.Add(-spanCost(old))
		}
	}
}

// Get returns copies of the retained spans of one trace, sorted by start
// time then span ID (the deterministic order the assembly endpoints
// serve). Concurrent writers may be overwriting slots during the scan;
// each slot read is one atomic pointer load, so the result is always a
// consistent set of whole spans.
func (r *SpanRing) Get(traceID uint64) []Span {
	var out []Span
	for i := range r.slots {
		if s := r.slots[i].Load(); s != nil && s.TraceID == traceID {
			out = append(out, *s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len counts currently retained spans.
func (r *SpanRing) Len() int {
	n := 0
	for i := range r.slots {
		if r.slots[i].Load() != nil {
			n++
		}
	}
	return n
}

// Bytes reports the current resident-byte estimate.
func (r *SpanRing) Bytes() int64 { return r.bytes.Load() }
