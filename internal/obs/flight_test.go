package obs

import (
	"strings"
	"testing"
)

func TestFlightRing(t *testing.T) {
	f := NewFlight(4)
	if f.Len() != 0 || f.Dropped() != 0 {
		t.Fatal("fresh flight recorder not empty")
	}
	for i := 0; i < 10; i++ {
		f.Event(&Event{Kind: EvBuiltin, Name: names[i%len(names)]})
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	if f.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", f.Dropped())
	}
	tail := f.Tail()
	// The last 4 of the 10 events, oldest first: indices 6..9.
	for i, ev := range tail {
		want := names[(6+i)%len(names)]
		if ev.Name != want {
			t.Fatalf("tail[%d].Name = %q, want %q", i, ev.Name, want)
		}
	}
	lines := f.Lines()
	if len(lines) != 4 || !strings.HasPrefix(lines[0], "builtin ") {
		t.Fatalf("Lines = %v", lines)
	}
}

var names = []string{"a", "b", "c", "d", "e"}

func TestFlightPartialFill(t *testing.T) {
	f := NewFlight(0) // default capacity
	f.Event(&Event{Kind: EvStep})
	f.Event(&Event{Kind: EvSeqPoint, Size: 2})
	if f.Len() != 2 || f.Dropped() != 0 {
		t.Fatalf("Len/Dropped = %d/%d, want 2/0", f.Len(), f.Dropped())
	}
	tail := f.Tail()
	if len(tail) != 2 || tail[0].Kind != EvStep || tail[1].Kind != EvSeqPoint {
		t.Fatalf("tail = %v", tail)
	}
}

// TestFlightCopiesEvents pins the Observer contract: the emitter's reused
// scratch event must be copied, not retained.
func TestFlightCopiesEvents(t *testing.T) {
	f := NewFlight(8)
	ev := Event{Kind: EvBuiltin, Name: "first"}
	f.Event(&ev)
	ev.Name = "mutated"
	if got := f.Tail()[0].Name; got != "first" {
		t.Fatalf("flight recorder retained the borrowed pointer: %q", got)
	}
}
