package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ub"
)

// Metrics aggregates the event stream into counters. All scalar counters
// are atomics and the per-behavior tallies are fixed-size atomic arrays, so
// one Metrics may observe several goroutines at once without locks on the
// hot path (only the builtin-call map takes a mutex, and builtin calls are
// rare next to steps). For contention-free fan-in across a worker pool,
// hand each goroutine its own shard via Sharded.
type Metrics struct {
	steps atomic.Int64

	reads, writes         atomic.Int64
	readBytes, writeBytes atomic.Int64
	readsByClass          [numAccessClasses]atomic.Int64
	writesByClass         [numAccessClasses]atomic.Int64

	seqPoints, seqFlushed atomic.Int64

	checksPassed, checksFired atomic.Int64
	// pass/fire are indexed by ub.Behavior.Code (1-based; index 0 unused).
	pass, fire []atomic.Int64

	sched                  atomic.Int64
	cacheHits, cacheMisses atomic.Int64
	faults                 atomic.Int64

	mu       sync.Mutex
	builtins map[string]int64
}

// NewMetrics returns an empty collector sized to the UB catalog.
func NewMetrics() *Metrics {
	return &Metrics{
		pass:     make([]atomic.Int64, len(ub.Catalog)+1),
		fire:     make([]atomic.Int64, len(ub.Catalog)+1),
		builtins: make(map[string]int64),
	}
}

// Event implements Observer.
func (m *Metrics) Event(ev *Event) {
	switch ev.Kind {
	case EvStep:
		m.steps.Add(1)
	case EvRead:
		m.reads.Add(1)
		m.readBytes.Add(ev.Size)
		m.readsByClass[ev.Class].Add(1)
	case EvWrite:
		m.writes.Add(1)
		m.writeBytes.Add(ev.Size)
		m.writesByClass[ev.Class].Add(1)
	case EvSeqPoint:
		m.seqPoints.Add(1)
		m.seqFlushed.Add(ev.Size)
	case EvCheck:
		code := ev.Behavior.Code
		if ev.Fired {
			m.checksFired.Add(1)
			if code >= 1 && code < len(m.fire) {
				m.fire[code].Add(1)
			}
		} else {
			m.checksPassed.Add(1)
			if code >= 1 && code < len(m.pass) {
				m.pass[code].Add(1)
			}
		}
	case EvSched:
		m.sched.Add(1)
	case EvBuiltin:
		m.mu.Lock()
		m.builtins[ev.Name]++
		m.mu.Unlock()
	case EvCacheHit:
		m.cacheHits.Add(1)
	case EvCacheMiss:
		m.cacheMisses.Add(1)
	case EvFault:
		m.faults.Add(1)
	}
}

// Snapshot freezes the counters into the mergeable, JSON-stable form.
func (m *Metrics) Snapshot() *Snapshot {
	s := &Snapshot{
		Steps:          m.steps.Load(),
		MemReads:       m.reads.Load(),
		MemWrites:      m.writes.Load(),
		MemReadBytes:   m.readBytes.Load(),
		MemWriteBytes:  m.writeBytes.Load(),
		SeqPoints:      m.seqPoints.Load(),
		SeqFlushedLocs: m.seqFlushed.Load(),
		ChecksPassed:   m.checksPassed.Load(),
		ChecksFired:    m.checksFired.Load(),
		SchedChoices:   m.sched.Load(),
		CacheHits:      m.cacheHits.Load(),
		CacheMisses:    m.cacheMisses.Load(),
		Faults:         m.faults.Load(),
	}
	for c := 0; c < numAccessClasses; c++ {
		if n := m.readsByClass[c].Load(); n > 0 {
			if s.ReadsByClass == nil {
				s.ReadsByClass = map[string]int64{}
			}
			s.ReadsByClass[AccessClass(c).String()] = n
		}
		if n := m.writesByClass[c].Load(); n > 0 {
			if s.WritesByClass == nil {
				s.WritesByClass = map[string]int64{}
			}
			s.WritesByClass[AccessClass(c).String()] = n
		}
	}
	for code := 1; code < len(m.pass); code++ {
		p, f := m.pass[code].Load(), m.fire[code].Load()
		if p == 0 && f == 0 {
			continue
		}
		if s.Checks == nil {
			s.Checks = map[string]*CheckCount{}
		}
		b, _ := ub.Lookup(code)
		s.Checks[CheckKey(code)] = &CheckCount{Section: b.Section, Desc: b.Desc, Passed: p, Fired: f}
	}
	m.mu.Lock()
	if len(m.builtins) > 0 {
		s.BuiltinCalls = make(map[string]int64, len(m.builtins))
		for name, n := range m.builtins {
			s.BuiltinCalls[name] = n
		}
	}
	m.mu.Unlock()
	return s
}

// CheckKey is the stable JSON key of a behavior: the zero-padded code the
// paper's error reports print ("Error: 00016").
func CheckKey(code int) string { return fmt.Sprintf("%05d", code) }

// Sharded hands out per-goroutine Metrics shards and merges them on
// demand: each worker increments only its own shard (no cross-CPU
// contention at all), and Snapshot folds the shards together. Counter
// addition is commutative, so the merged snapshot is deterministic no
// matter how work was scheduled across shards.
type Sharded struct {
	mu     sync.Mutex
	shards []*Metrics
}

// NewSharded returns an empty shard set.
func NewSharded() *Sharded { return &Sharded{} }

// Shard registers and returns a new shard. Call once per goroutine and
// reuse the result; a shard is an Observer like any other.
func (s *Sharded) Shard() *Metrics {
	m := NewMetrics()
	s.mu.Lock()
	s.shards = append(s.shards, m)
	s.mu.Unlock()
	return m
}

// Snapshot merges every shard into one frozen view.
func (s *Sharded) Snapshot() *Snapshot {
	s.mu.Lock()
	shards := append([]*Metrics{}, s.shards...)
	s.mu.Unlock()
	out := &Snapshot{}
	for _, m := range shards {
		out.Add(m.Snapshot())
	}
	return out
}

// CheckCount tallies one behavior's check evaluations.
type CheckCount struct {
	Section string `json:"section"`
	Desc    string `json:"desc,omitempty"`
	Passed  int64  `json:"passed"`
	Fired   int64  `json:"fired"`
}

// Snapshot is the frozen, mergeable view of a Metrics — the canonical
// machine-readable metrics shape of the undefc.report/v1 schema. All
// fields are plain values so a Snapshot round-trips through JSON.
type Snapshot struct {
	Steps          int64            `json:"steps"`
	MemReads       int64            `json:"mem_reads"`
	MemWrites      int64            `json:"mem_writes"`
	MemReadBytes   int64            `json:"mem_read_bytes"`
	MemWriteBytes  int64            `json:"mem_write_bytes"`
	ReadsByClass   map[string]int64 `json:"reads_by_class,omitempty"`
	WritesByClass  map[string]int64 `json:"writes_by_class,omitempty"`
	SeqPoints      int64            `json:"seq_points"`
	SeqFlushedLocs int64            `json:"seq_flushed_locs"`
	ChecksPassed   int64            `json:"checks_passed"`
	ChecksFired    int64            `json:"checks_fired"`
	// Checks is keyed by zero-padded behavior code ("00016").
	Checks       map[string]*CheckCount `json:"checks_by_behavior,omitempty"`
	SchedChoices int64                  `json:"sched_choices"`
	BuiltinCalls map[string]int64       `json:"builtin_calls,omitempty"`
	CacheHits    int64                  `json:"cache_hits,omitempty"`
	CacheMisses  int64                  `json:"cache_misses,omitempty"`
	// Faults counts contained pipeline panics (fault-containment layer).
	Faults int64 `json:"faults,omitempty"`

	// Cases counts the per-run snapshots merged in via AddCase, and
	// StepsPerCase is their step-count histogram — suite-level fields,
	// absent on a single run's snapshot.
	Cases        int64 `json:"cases,omitempty"`
	StepsPerCase *Hist `json:"steps_per_case,omitempty"`
}

// Add accumulates o counter-wise (shard or suite merging). Nil is a no-op.
func (s *Snapshot) Add(o *Snapshot) {
	if o == nil {
		return
	}
	s.Steps += o.Steps
	s.MemReads += o.MemReads
	s.MemWrites += o.MemWrites
	s.MemReadBytes += o.MemReadBytes
	s.MemWriteBytes += o.MemWriteBytes
	s.SeqPoints += o.SeqPoints
	s.SeqFlushedLocs += o.SeqFlushedLocs
	s.ChecksPassed += o.ChecksPassed
	s.ChecksFired += o.ChecksFired
	s.SchedChoices += o.SchedChoices
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.Faults += o.Faults
	s.Cases += o.Cases
	s.ReadsByClass = addMap(s.ReadsByClass, o.ReadsByClass)
	s.WritesByClass = addMap(s.WritesByClass, o.WritesByClass)
	s.BuiltinCalls = addMap(s.BuiltinCalls, o.BuiltinCalls)
	for k, c := range o.Checks {
		if s.Checks == nil {
			s.Checks = map[string]*CheckCount{}
		}
		if have := s.Checks[k]; have != nil {
			have.Passed += c.Passed
			have.Fired += c.Fired
		} else {
			cp := *c
			s.Checks[k] = &cp
		}
	}
	if o.StepsPerCase != nil {
		if s.StepsPerCase == nil {
			s.StepsPerCase = &Hist{}
		}
		s.StepsPerCase.Merge(o.StepsPerCase)
	}
}

// AddCase merges one per-run snapshot as a suite case: counters are
// accumulated, Cases is incremented, and the run's step count is observed
// into the StepsPerCase histogram.
func (s *Snapshot) AddCase(o *Snapshot) {
	if o == nil {
		return
	}
	s.Add(o)
	s.Cases++
	if s.StepsPerCase == nil {
		s.StepsPerCase = &Hist{}
	}
	s.StepsPerCase.Observe(o.Steps)
}

func addMap(dst, src map[string]int64) map[string]int64 {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[string]int64, len(src))
	}
	for k, v := range src {
		dst[k] += v
	}
	return dst
}

// Summary renders the snapshot as one human-readable line (the -metrics
// footer of ubsuite).
func (s *Snapshot) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "steps %d · mem %dr/%dw · seqpts %d · checks %d passed / %d fired · sched %d",
		s.Steps, s.MemReads, s.MemWrites, s.SeqPoints, s.ChecksPassed, s.ChecksFired, s.SchedChoices)
	if top := s.TopFired(3); top != "" {
		fmt.Fprintf(&b, " · top fired: %s", top)
	}
	return b.String()
}

// TopFired lists the n most-fired behaviors as "00016×12, ...", sorted by
// count then code (deterministic).
func (s *Snapshot) TopFired(n int) string {
	type kv struct {
		key   string
		fired int64
	}
	var fired []kv
	for k, c := range s.Checks {
		if c.Fired > 0 {
			fired = append(fired, kv{k, c.Fired})
		}
	}
	sort.Slice(fired, func(i, j int) bool {
		if fired[i].fired != fired[j].fired {
			return fired[i].fired > fired[j].fired
		}
		return fired[i].key < fired[j].key
	})
	if len(fired) > n {
		fired = fired[:n]
	}
	parts := make([]string, len(fired))
	for i, f := range fired {
		parts[i] = fmt.Sprintf("%s×%d", f.key, f.fired)
	}
	return strings.Join(parts, ", ")
}

// histBuckets covers counts up to 2^39 (~5.5e11), far beyond any step
// budget; larger values clamp into the last bucket.
const histBuckets = 40

// Hist is a power-of-two-bucketed histogram: Buckets[i] counts observed
// values v with 2^(i-1) < v <= 2^i (Buckets[0] counts v <= 1). The fixed
// shape keeps merging elementwise and the JSON stable.
type Hist struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	// Buckets[i] has upper bound 2^i.
	Buckets [histBuckets]int64 `json:"buckets"`
}

// Observe adds one value.
func (h *Hist) Observe(v int64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bucketOf(v)]++
}

func bucketOf(v int64) int {
	b := 0
	for upper := int64(1); b < histBuckets-1 && v > upper; b++ {
		upper <<= 1
	}
	return b
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Mean is the average observed value.
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}
