package obs

import "sync/atomic"

// Gauge is a point-in-time level (queue depth, in-flight requests) with a
// high-water mark. Counters only ever go up; a gauge goes both ways, and
// for serving systems the interesting question is usually "how deep did it
// get", so every increase also races the recorded maximum forward. All
// operations are lock-free atomics, safe for any number of goroutines.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Add moves the level by d (negative to decrease) and returns the new
// level. Increases update the high-water mark.
func (g *Gauge) Add(d int64) int64 {
	n := g.v.Add(d)
	for {
		m := g.max.Load()
		if n <= m || g.max.CompareAndSwap(m, n) {
			return n
		}
	}
}

// Inc increments the level by one and returns the new level.
func (g *Gauge) Inc() int64 { return g.Add(1) }

// Dec decrements the level by one and returns the new level.
func (g *Gauge) Dec() int64 { return g.Add(-1) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// Reset rebases the high-water mark to the current level, so a long-lived
// process can start a fresh measurement window (undefbench runs against a
// daemon would otherwise always read the all-time maximum). The level
// itself is untouched — it tracks live state, not history. A concurrent
// increase may race the rebase and win; that increase belongs to the new
// window anyway.
func (g *Gauge) Reset() { g.max.Store(g.v.Load()) }
