package obs

// The UB check-site coverage ledger: which of the catalog's formalized
// behaviors the running process has ever *evaluated* a check for, and
// which of those checks have ever *fired*. The paper's evaluation
// (Figure 2) accounts for which behaviors each tool catches; the ledger
// closes the complementary evidence gap — which registered behaviors a
// suite never even exercises (dead coverage).
//
// The design splits a static and a dynamic half:
//
//   - At init time every interp/vm check site registers a
//     (behavior code, profile gate, site) triple via RegisterCheckSite.
//     The registry is written only during package initialization and is
//     read-only afterwards, so snapshots read it without locks.
//   - At run time the two check funnels (interp.ubError and
//     interp.obsCheckPass, which the VM reaches through the same exported
//     wrappers) bump one fixed-size atomic counter each: CoverageHit is a
//     single indexed atomic add, allocation-free, and independent of
//     whether an Observer is installed — the ledger is always on.
//
// Counter totals are order-independent sums, so a parallel matrix run
// (-j 8) and both engines produce identical ledgers by construction.

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ub"
)

// CoverageSchema identifies the ledger wire format.
const CoverageSchema = "undefc.coverage/v1"

// CheckSite is one registered check location: behavior code, the
// interp.Profile gate that arms it ("Always" for ungated checks), and a
// stable site name ("access.readLV").
type CheckSite struct {
	Code int    `json:"code"`
	Gate string `json:"gate"`
	Site string `json:"site"`
}

var (
	coverageRegMu sync.Mutex
	coverageSites []CheckSite

	// Indexed by ub.Behavior.Code (1-based; index 0 absorbs out-of-range
	// codes so the hot path never branches on bounds beyond the mask).
	coverageEvaluated []atomic.Int64
	coverageFired     []atomic.Int64
)

func init() {
	coverageEvaluated = make([]atomic.Int64, len(ub.Catalog)+1)
	coverageFired = make([]atomic.Int64, len(ub.Catalog)+1)
}

// RegisterCheckSite records one check site in the static registry. Call
// from package init functions only; duplicate (code, gate, site) triples
// collapse to one entry.
func RegisterCheckSite(code int, gate, site string) {
	coverageRegMu.Lock()
	defer coverageRegMu.Unlock()
	for _, s := range coverageSites {
		if s.Code == code && s.Gate == gate && s.Site == site {
			return
		}
	}
	coverageSites = append(coverageSites, CheckSite{Code: code, Gate: gate, Site: site})
}

// CheckSites returns the registered sites sorted by code, then gate, then
// site — the deterministic registry order every report uses.
func CheckSites() []CheckSite {
	coverageRegMu.Lock()
	out := append([]CheckSite{}, coverageSites...)
	coverageRegMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Code != out[j].Code {
			return out[i].Code < out[j].Code
		}
		if out[i].Gate != out[j].Gate {
			return out[i].Gate < out[j].Gate
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// CoverageHit records one check evaluation on the behavior with the given
// code; fired additionally marks it as detected. One (or two) indexed
// atomic adds: the zero-alloc hot path gated in `make check`.
func CoverageHit(code int, fired bool) {
	if code < 1 || code >= len(coverageEvaluated) {
		code = 0
	}
	coverageEvaluated[code].Add(1)
	if fired {
		coverageFired[code].Add(1)
	}
}

// ResetCoverage zeroes the counters (registry entries persist). Test and
// debug-surface plumbing; never on a hot path.
func ResetCoverage() {
	for i := range coverageEvaluated {
		coverageEvaluated[i].Store(0)
		coverageFired[i].Store(0)
	}
}

// CoverageRow is one behavior's ledger line: identity, the sites and
// gates registered for it, and the process-lifetime counters.
type CoverageRow struct {
	Code    int    `json:"code"`
	Key     string `json:"key"` // zero-padded code, "00016"
	Section string `json:"section"`
	Desc    string `json:"desc,omitempty"`
	// Gates and Sites are the distinct registered gate names and site
	// names, sorted.
	Gates     []string `json:"gates"`
	Sites     []string `json:"sites"`
	Evaluated int64    `json:"evaluated"`
	Fired     int64    `json:"fired"`
}

// CoverageLedger is the wire form of GET /v1/coverage and the merge unit
// for cross-shard aggregation: every registered behavior, with counters.
type CoverageLedger struct {
	Schema string `json:"schema"`
	// Registered counts distinct behaviors with at least one check site;
	// Fired counts those whose checks ever fired; Dead = Registered-Fired.
	Registered int           `json:"registered_behaviors"`
	Fired      int           `json:"fired_behaviors"`
	Dead       int           `json:"dead_behaviors"`
	Behaviors  []CoverageRow `json:"behaviors"`
}

// CoverageSnapshot assembles the current ledger: one row per registered
// behavior code, sorted by code, with live counter values.
func CoverageSnapshot() *CoverageLedger {
	sites := CheckSites()
	led := &CoverageLedger{Schema: CoverageSchema}
	var row *CoverageRow
	for _, s := range sites {
		if row == nil || row.Code != s.Code {
			led.Behaviors = append(led.Behaviors, CoverageRow{Code: s.Code, Key: CheckKey(s.Code)})
			row = &led.Behaviors[len(led.Behaviors)-1]
			if b, ok := ub.Lookup(s.Code); ok {
				row.Section = b.Section
				row.Desc = b.Desc
			}
			if s.Code >= 1 && s.Code < len(coverageEvaluated) {
				row.Evaluated = coverageEvaluated[s.Code].Load()
				row.Fired = coverageFired[s.Code].Load()
			}
		}
		row.Gates = appendUnique(row.Gates, s.Gate)
		row.Sites = appendUnique(row.Sites, s.Site)
	}
	led.recount()
	return led
}

// recount rederives the summary counts from the rows.
func (l *CoverageLedger) recount() {
	l.Registered = len(l.Behaviors)
	l.Fired = 0
	for i := range l.Behaviors {
		if l.Behaviors[i].Fired > 0 {
			l.Fired++
		}
	}
	l.Dead = l.Registered - l.Fired
}

// Add merges another ledger's counters into l, matching rows by code;
// rows l has never seen are appended (keeping code order) with the
// other's registry metadata. Nil is a no-op. Addition is commutative, so
// cross-shard aggregation is deterministic regardless of fan-out order.
func (l *CoverageLedger) Add(o *CoverageLedger) {
	if o == nil {
		return
	}
	byCode := make(map[int]*CoverageRow, len(l.Behaviors))
	for i := range l.Behaviors {
		byCode[l.Behaviors[i].Code] = &l.Behaviors[i]
	}
	for i := range o.Behaviors {
		or := &o.Behaviors[i]
		if row := byCode[or.Code]; row != nil {
			row.Evaluated += or.Evaluated
			row.Fired += or.Fired
			for _, g := range or.Gates {
				row.Gates = appendUnique(row.Gates, g)
			}
			for _, s := range or.Sites {
				row.Sites = appendUnique(row.Sites, s)
			}
			continue
		}
		cp := *or
		cp.Gates = append([]string{}, or.Gates...)
		cp.Sites = append([]string{}, or.Sites...)
		l.Behaviors = append(l.Behaviors, cp)
	}
	sort.Slice(l.Behaviors, func(i, j int) bool { return l.Behaviors[i].Code < l.Behaviors[j].Code })
	l.recount()
}

// appendUnique inserts v into a sorted unique string slice.
func appendUnique(xs []string, v string) []string {
	i := sort.SearchStrings(xs, v)
	if i < len(xs) && xs[i] == v {
		return xs
	}
	xs = append(xs, "")
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}
