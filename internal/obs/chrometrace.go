package obs

// Chrome trace-event export: the span tree rendered in the JSON format
// chrome://tracing and https://ui.perfetto.dev load directly, so a
// `kcc -trace-out trace.json` or a sampled GET /v1/trace/{id} body drops
// straight into a flame view with no further tooling.

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// ChromeEvent is one trace-event line ("X" complete events only).
// Timestamps and durations are microseconds, per the format.
type ChromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	PID  int               `json:"pid"`
	TID  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace is the top-level trace file shape.
type ChromeTrace struct {
	TraceEvents []ChromeEvent `json:"traceEvents"`
}

// ChromeTraceFrom converts a span set into trace events. Timestamps are
// rebased to the earliest span start, each trace gets its own thread row
// (tid = trace ID), and events are ordered by start time then span ID so
// the output is stable for a given span set.
func ChromeTraceFrom(spans []*Span) *ChromeTrace {
	sorted := append([]*Span{}, spans...)
	sort.Slice(sorted, func(i, j int) bool {
		if !sorted[i].Start.Equal(sorted[j].Start) {
			return sorted[i].Start.Before(sorted[j].Start)
		}
		return sorted[i].ID < sorted[j].ID
	})
	tr := &ChromeTrace{TraceEvents: []ChromeEvent{}}
	if len(sorted) == 0 {
		return tr
	}
	base := sorted[0].Start
	for _, s := range sorted {
		args := map[string]string{
			"span":   strconv.FormatUint(s.ID, 10),
			"parent": strconv.FormatUint(s.Parent, 10),
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Val
		}
		tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
			Name: s.Name,
			Ph:   "X",
			TS:   s.Start.Sub(base).Microseconds(),
			Dur:  s.Dur.Microseconds(),
			PID:  1,
			TID:  s.TraceID,
			Args: args,
		})
	}
	return tr
}

// WriteChromeTrace renders the spans as an indented trace-event JSON file.
func WriteChromeTrace(w io.Writer, spans []*Span) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ChromeTraceFrom(spans))
}
