package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func ringSpan(trace, id uint64, name string) *Span {
	return &Span{TraceID: trace, ID: id, Name: name, Start: time.Unix(0, int64(id)), Dur: time.Millisecond}
}

func TestSpanRingGetFiltersAndSorts(t *testing.T) {
	r := NewSpanRing(64, 1<<20)
	r.CollectSpan(ringSpan(7, 3, "c"))
	r.CollectSpan(ringSpan(9, 10, "other"))
	r.CollectSpan(ringSpan(7, 1, "a"))
	r.CollectSpan(ringSpan(7, 2, "b"))
	got := r.Get(7)
	if len(got) != 3 {
		t.Fatalf("got %d spans, want 3", len(got))
	}
	for i, want := range []string{"a", "b", "c"} {
		if got[i].Name != want {
			t.Fatalf("span %d = %q, want %q (sorted by start then id)", i, got[i].Name, want)
		}
	}
	if len(r.Get(12345)) != 0 {
		t.Fatal("unknown trace returned spans")
	}
}

func TestSpanRingWrapBoundsCount(t *testing.T) {
	r := NewSpanRing(8, 1<<20)
	for i := uint64(1); i <= 100; i++ {
		r.CollectSpan(ringSpan(1, i, "s"))
	}
	if n := r.Len(); n > 8 {
		t.Fatalf("ring retains %d spans, cap 8", n)
	}
	got := r.Get(1)
	for _, s := range got {
		if s.ID <= 92 {
			t.Fatalf("ring retained span %d after being lapped", s.ID)
		}
	}
}

// TestSpanRingEvictionBytePressure drives a ring over its byte budget and
// checks it reclaims oldest-first back under the budget instead of
// growing or failing writes.
func TestSpanRingEvictionBytePressure(t *testing.T) {
	const budget = 4096
	r := NewSpanRing(1024, budget) // slot bound far above what the budget admits
	fat := make([]byte, 200)
	for i := range fat {
		fat[i] = 'x'
	}
	for i := uint64(1); i <= 500; i++ {
		s := ringSpan(1, i, "fat")
		s.SetAttr("payload", string(fat))
		r.CollectSpan(s)
	}
	if b := r.Bytes(); b > budget {
		t.Fatalf("resident bytes %d exceed budget %d after writes settled", b, budget)
	}
	got := r.Get(1)
	if len(got) == 0 {
		t.Fatal("byte pressure evicted everything including the newest spans")
	}
	for _, s := range got {
		if s.ID <= 400 {
			t.Fatalf("old span %d survived byte-pressure eviction while newer ones were written", s.ID)
		}
	}
}

// TestSpanRingConcurrent hammers the ring from parallel writers and
// readers (run under -race in make check): every span read back must be
// whole and belong to the trace asked for.
func TestSpanRingConcurrent(t *testing.T) {
	r := NewSpanRing(256, 64<<10)
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			trace := uint64(w + 1)
			for i := 0; i < perWorker; i++ {
				s := ringSpan(trace, uint64(i+1), fmt.Sprintf("w%d", w))
				s.SetAttr("i", fmt.Sprint(i))
				r.CollectSpan(s)
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				trace := uint64(g + 1)
				for _, s := range r.Get(trace) {
					if s.TraceID != trace {
						t.Errorf("Get(%d) returned span of trace %d", trace, s.TraceID)
						return
					}
					if want := fmt.Sprintf("w%d", trace-1); s.Name != want {
						t.Errorf("torn span: trace %d name %q", trace, s.Name)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
}

// TestCollectorsConcurrentMultiWorkerTraces runs many goroutines each
// recording its own trace through the StartSpan API into one shared
// TraceBuffer + SpanRing tee — the server's exact collector wiring — and
// checks every trace arrives complete in both stores.
func TestCollectorsConcurrentMultiWorkerTraces(t *testing.T) {
	buf := NewTraceBuffer(64)
	ring := NewSpanRing(4096, 4<<20)
	col := TeeCollector(buf, ring)
	const workers = 16
	const children = 5
	traceIDs := make([]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		traceIDs[w] = NewTraceID()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := WithTraceID(context.Background(), col, traceIDs[w])
			ctx, root := StartSpan(ctx, "root")
			var inner sync.WaitGroup
			for c := 0; c < children; c++ {
				inner.Add(1)
				go func(c int) {
					defer inner.Done()
					_, sp := StartSpan(ctx, "child")
					sp.SetAttr("c", fmt.Sprint(c))
					sp.End()
				}(c)
			}
			inner.Wait()
			root.End()
		}(w)
	}
	wg.Wait()
	for w, tid := range traceIDs {
		spans := buf.Get(tid)
		if len(spans) != children+1 {
			t.Fatalf("worker %d: TraceBuffer holds %d spans, want %d", w, len(spans), children+1)
		}
		roots := 0
		for _, s := range spans {
			if s.TraceID != tid {
				t.Fatalf("worker %d: foreign span in trace", w)
			}
			if s.Parent == 0 {
				roots++
			} else if s.Parent != spans[len(spans)-1].ID && s.Name != "child" {
				t.Fatalf("worker %d: unexpected span %q", w, s.Name)
			}
		}
		if roots != 1 {
			t.Fatalf("worker %d: %d roots, want 1", w, roots)
		}
		if got := ring.Get(tid); len(got) != children+1 {
			t.Fatalf("worker %d: SpanRing holds %d spans, want %d", w, len(got), children+1)
		}
	}
}

func TestTeeCollectorNilHandling(t *testing.T) {
	if TeeCollector(nil, nil) != nil {
		t.Fatal("all-nil tee is not nil")
	}
	buf := &SpanBuffer{}
	if c := TeeCollector(nil, buf); c != Collector(buf) {
		t.Fatal("single-collector tee did not collapse")
	}
}
