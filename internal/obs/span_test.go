package obs

import (
	"context"
	"strings"
	"testing"
)

func TestSpanTreeAndCollection(t *testing.T) {
	buf := &SpanBuffer{}
	ctx, traceID := WithTrace(context.Background(), buf)
	if traceID == 0 {
		t.Fatal("WithTrace returned zero trace ID")
	}
	ctx, root := StartSpan(ctx, "root")
	if !root.Recording() {
		t.Fatal("root span not recording under an installed collector")
	}
	cctx, child := StartSpan(ctx, "child")
	_, grand := StartSpan(cctx, "grandchild")
	grand.SetAttr("k", "v")
	grand.End()
	child.End()
	root.End()

	spans := buf.Spans()
	if len(spans) != 3 {
		t.Fatalf("collected %d spans, want 3", len(spans))
	}
	// End order: deepest first.
	if spans[0].Name != "grandchild" || spans[1].Name != "child" || spans[2].Name != "root" {
		t.Fatalf("unexpected collection order: %s, %s, %s", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	if spans[2].Parent != 0 {
		t.Fatalf("root parent = %d, want 0", spans[2].Parent)
	}
	if spans[1].Parent != spans[2].ID || spans[0].Parent != spans[1].ID {
		t.Fatal("parent links do not form the start chain")
	}
	for _, s := range spans {
		if s.TraceID != traceID {
			t.Fatalf("span %s trace ID %d, want %d", s.Name, s.TraceID, traceID)
		}
	}
	if len(spans[0].Attrs) != 1 || spans[0].Attrs[0] != (Attr{"k", "v"}) {
		t.Fatalf("grandchild attrs = %v", spans[0].Attrs)
	}
}

func TestSpanNoCollectorIsNilAndFree(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "nope")
	if sp != nil {
		t.Fatal("StartSpan without a collector returned a live span")
	}
	if ctx2 != ctx {
		t.Fatal("StartSpan without a collector derived a new context")
	}
	// All methods are nil-safe no-ops.
	sp.SetAttr("k", "v")
	sp.End()
	if sp.Recording() {
		t.Fatal("nil span reports Recording")
	}

	allocs := testing.AllocsPerRun(1000, func() {
		c, s := StartSpan(ctx, "hot")
		s.SetAttr("k", "v")
		s.End()
		_ = c
	})
	if allocs != 0 {
		t.Fatalf("no-collector span path allocates %.1f times, want 0", allocs)
	}
}

// BenchmarkSpanOverhead is the always-on cost gate (wired into
// `make check` with an alloc assertion): starting and ending a span on a
// context with no collector must allocate nothing.
func BenchmarkSpanOverhead(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, s := StartSpan(ctx, "hot")
		s.End()
		_ = c
	}
}

func TestRebindTrace(t *testing.T) {
	buf := &SpanBuffer{}
	src, traceID := WithTrace(context.Background(), buf)
	src, root := StartSpan(src, "root")

	// Detach cancellation but keep the trace (the coalescing-leader pattern).
	detached := RebindTrace(context.Background(), src)
	_, sp := StartSpan(detached, "detached-child")
	sp.End()
	root.End()

	spans := buf.Spans()
	if len(spans) != 2 {
		t.Fatalf("collected %d spans, want 2", len(spans))
	}
	if spans[0].TraceID != traceID || spans[0].Parent != spans[1].ID {
		t.Fatal("rebound span lost its trace identity or parent link")
	}
	// Rebinding from an untraced context is a no-op.
	if got := RebindTrace(context.Background(), context.Background()); got.Value(traceCtxKey{}) != nil {
		t.Fatal("RebindTrace invented trace state")
	}
}

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	s := FormatTraceID(id)
	if len(s) != 16 {
		t.Fatalf("FormatTraceID(%d) = %q, want 16 hex digits", id, s)
	}
	back, err := ParseTraceID(s)
	if err != nil || back != id {
		t.Fatalf("ParseTraceID(%q) = %d, %v; want %d", s, back, err, id)
	}
	if _, err := ParseTraceID("not-hex"); err == nil {
		t.Fatal("ParseTraceID accepted garbage")
	}
}

func TestTraceBufferEviction(t *testing.T) {
	b := NewTraceBuffer(2)
	var ids []uint64
	for i := 0; i < 3; i++ {
		ctx, id := WithTrace(context.Background(), b)
		ids = append(ids, id)
		ctx, root := StartSpan(ctx, "root")
		_, c := StartSpan(ctx, "child")
		c.End()
		root.End()
	}
	if b.Get(ids[0]) != nil {
		t.Fatal("oldest trace not evicted at capacity 2")
	}
	for _, id := range ids[1:] {
		spans := b.Get(id)
		if len(spans) != 2 {
			t.Fatalf("trace %x has %d spans, want 2", id, len(spans))
		}
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
}

func TestChromeTraceFrom(t *testing.T) {
	buf := &SpanBuffer{}
	ctx, _ := WithTrace(context.Background(), buf)
	ctx, root := StartSpan(ctx, "root")
	_, child := StartSpan(ctx, "child")
	child.SetAttr("tool", "kcc")
	child.End()
	root.End()

	tr := ChromeTraceFrom(buf.Spans())
	if len(tr.TraceEvents) != 2 {
		t.Fatalf("%d trace events, want 2", len(tr.TraceEvents))
	}
	// Start order: root first, despite end order being child-first.
	if tr.TraceEvents[0].Name != "root" || tr.TraceEvents[1].Name != "child" {
		t.Fatalf("event order %s, %s; want root, child", tr.TraceEvents[0].Name, tr.TraceEvents[1].Name)
	}
	if tr.TraceEvents[0].TS != 0 {
		t.Fatalf("timestamps not rebased: root ts = %d", tr.TraceEvents[0].TS)
	}
	if got := tr.TraceEvents[1].Args["tool"]; got != "kcc" {
		t.Fatalf("child args missing attr: %v", tr.TraceEvents[1].Args)
	}

	var sb strings.Builder
	if err := WriteChromeTrace(&sb, buf.Spans()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"traceEvents"`) {
		t.Fatal("WriteChromeTrace output missing traceEvents envelope")
	}
}
