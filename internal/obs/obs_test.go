package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/token"
	"repro/internal/ub"
)

func TestMetricsCounting(t *testing.T) {
	m := NewMetrics()
	pos := token.Pos{File: "t.c", Line: 3, Col: 1}
	events := []Event{
		{Kind: EvStep, Pos: pos},
		{Kind: EvStep, Pos: pos},
		{Kind: EvRead, Pos: pos, Class: ClassAuto, Size: 4},
		{Kind: EvRead, Pos: pos, Class: ClassHeap, Size: 8},
		{Kind: EvWrite, Pos: pos, Class: ClassAuto, Size: 4},
		{Kind: EvSeqPoint, Size: 3},
		{Kind: EvCheck, Pos: pos, Behavior: ub.IndeterminateValue},
		{Kind: EvCheck, Pos: pos, Behavior: ub.IndeterminateValue, Fired: true},
		{Kind: EvSched, Choice: 1, Fanout: 2},
		{Kind: EvBuiltin, Name: "printf"},
		{Kind: EvCacheHit, Name: "a.c"},
		{Kind: EvCacheMiss, Name: "b.c"},
	}
	for i := range events {
		m.Event(&events[i])
	}
	s := m.Snapshot()
	if s.Steps != 2 || s.MemReads != 2 || s.MemWrites != 1 {
		t.Fatalf("steps/reads/writes = %d/%d/%d, want 2/2/1", s.Steps, s.MemReads, s.MemWrites)
	}
	if s.MemReadBytes != 12 || s.MemWriteBytes != 4 {
		t.Fatalf("read/write bytes = %d/%d, want 12/4", s.MemReadBytes, s.MemWriteBytes)
	}
	if s.ReadsByClass["auto"] != 1 || s.ReadsByClass["heap"] != 1 || s.WritesByClass["auto"] != 1 {
		t.Fatalf("by-class maps wrong: %v / %v", s.ReadsByClass, s.WritesByClass)
	}
	if s.SeqPoints != 1 || s.SeqFlushedLocs != 3 {
		t.Fatalf("seq = %d/%d, want 1/3", s.SeqPoints, s.SeqFlushedLocs)
	}
	if s.ChecksPassed != 1 || s.ChecksFired != 1 {
		t.Fatalf("checks = %d passed/%d fired, want 1/1", s.ChecksPassed, s.ChecksFired)
	}
	key := CheckKey(ub.IndeterminateValue.Code)
	cc := s.Checks[key]
	if cc == nil || cc.Passed != 1 || cc.Fired != 1 || cc.Section != ub.IndeterminateValue.Section {
		t.Fatalf("check count for %s = %+v", key, cc)
	}
	if s.SchedChoices != 1 || s.BuiltinCalls["printf"] != 1 {
		t.Fatalf("sched/builtins wrong: %d / %v", s.SchedChoices, s.BuiltinCalls)
	}
	if s.CacheHits != 1 || s.CacheMisses != 1 {
		t.Fatalf("cache = %d/%d, want 1/1", s.CacheHits, s.CacheMisses)
	}
}

// TestShardedConcurrent drives shards from several goroutines (meaningful
// under -race) and checks the merge is exact.
func TestShardedConcurrent(t *testing.T) {
	sh := NewSharded()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := sh.Shard()
			ev := Event{Kind: EvStep}
			rd := Event{Kind: EvRead, Class: ClassStatic, Size: 1}
			for i := 0; i < perWorker; i++ {
				m.Event(&ev)
				m.Event(&rd)
			}
		}()
	}
	wg.Wait()
	s := sh.Snapshot()
	if s.Steps != workers*perWorker || s.MemReads != workers*perWorker {
		t.Fatalf("merged steps/reads = %d/%d, want %d", s.Steps, s.MemReads, workers*perWorker)
	}
}

func TestSnapshotAddCase(t *testing.T) {
	var suite Snapshot
	a := &Snapshot{Steps: 10, ChecksFired: 1,
		Checks: map[string]*CheckCount{"00016": {Section: "6.5:2", Fired: 1}}}
	b := &Snapshot{Steps: 100, ChecksPassed: 5,
		Checks: map[string]*CheckCount{"00016": {Section: "6.5:2", Passed: 5}}}
	suite.AddCase(a)
	suite.AddCase(b)
	suite.AddCase(nil) // no-op
	if suite.Cases != 2 || suite.Steps != 110 {
		t.Fatalf("cases/steps = %d/%d, want 2/110", suite.Cases, suite.Steps)
	}
	cc := suite.Checks["00016"]
	if cc.Passed != 5 || cc.Fired != 1 {
		t.Fatalf("merged check = %+v", cc)
	}
	h := suite.StepsPerCase
	if h == nil || h.Count != 2 || h.Sum != 110 || h.Min != 10 || h.Max != 100 {
		t.Fatalf("hist = %+v", h)
	}
	// Mutating the merged copy must not alias the input snapshots.
	cc.Fired = 99
	if a.Checks["00016"].Fired != 1 {
		t.Fatal("Add aliased the source CheckCount")
	}
}

func TestHist(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 2, 3, 1024, 1 << 45} {
		h.Observe(v)
	}
	if h.Count != 6 || h.Min != 0 || h.Max != 1<<45 {
		t.Fatalf("hist = %+v", h)
	}
	if h.Buckets[0] != 2 { // 0 and 1
		t.Fatalf("bucket 0 = %d, want 2", h.Buckets[0])
	}
	if h.Buckets[1] != 1 || h.Buckets[2] != 1 { // 2; 3
		t.Fatalf("buckets 1,2 = %d,%d, want 1,1", h.Buckets[1], h.Buckets[2])
	}
	if h.Buckets[10] != 1 { // 1024 = 2^10
		t.Fatalf("bucket 10 = %d, want 1", h.Buckets[10])
	}
	if h.Buckets[histBuckets-1] != 1 { // clamped
		t.Fatalf("last bucket = %d, want 1", h.Buckets[histBuckets-1])
	}
	var o Hist
	o.Observe(7)
	h.Merge(&o)
	if h.Count != 7 || h.Buckets[3] != 1 {
		t.Fatalf("after merge: %+v", h)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := &Snapshot{
		Steps: 42, MemReads: 3, MemWrites: 2, MemReadBytes: 12, MemWriteBytes: 8,
		ReadsByClass: map[string]int64{"auto": 3}, SeqPoints: 5, SeqFlushedLocs: 9,
		ChecksPassed: 7, ChecksFired: 1,
		Checks:       map[string]*CheckCount{"00016": {Section: "6.5:2", Desc: "x", Passed: 7, Fired: 1}},
		SchedChoices: 4, BuiltinCalls: map[string]int64{"printf": 2},
		CacheHits: 1, CacheMisses: 2, Cases: 3, StepsPerCase: &Hist{},
	}
	s.StepsPerCase.Observe(42)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, &back) {
		t.Fatalf("round trip changed the snapshot:\n  in:  %+v\n  out: %+v", s, back)
	}
}

func TestTracerAndEventString(t *testing.T) {
	var b strings.Builder
	tr := &Tracer{W: &b}
	pos := token.Pos{File: "t.c", Line: 2, Col: 7}
	tr.Event(&Event{Kind: EvStep, Pos: pos}) // suppressed without Steps
	tr.Event(&Event{Kind: EvCheck, Pos: pos, Behavior: ub.IndeterminateValue, Fired: true})
	tr.Event(&Event{Kind: EvRead, Pos: pos, Class: ClassAuto, Size: 4})
	out := b.String()
	if strings.Contains(out, "step") {
		t.Fatalf("step event not suppressed:\n%s", out)
	}
	if !strings.Contains(out, "check FIRE") || !strings.Contains(out, "t.c:2:7") {
		t.Fatalf("missing check line:\n%s", out)
	}
	if !strings.Contains(out, "read auto 4B") {
		t.Fatalf("missing read line:\n%s", out)
	}
}

func TestMultiPreservesNilFastPath(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of nils must be nil (the emitter's fast path key)")
	}
	r := &Recorder{}
	if got := Multi(nil, r, nil); got != Observer(r) {
		t.Fatalf("Multi with one live observer should unwrap it, got %T", got)
	}
	r2 := &Recorder{}
	m := Multi(r, r2)
	m.Event(&Event{Kind: EvStep})
	if len(r.Events) != 1 || len(r2.Events) != 1 {
		t.Fatalf("fan-out failed: %d/%d", len(r.Events), len(r2.Events))
	}
}
