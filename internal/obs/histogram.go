package obs

// Latency histograms in the Prometheus style: fixed, log-spaced buckets so
// two histograms merge bucket-wise with no coordination, recorded with
// lock-free atomics so any number of goroutines observe into one histogram
// (or, contention-free, into per-worker shards merged at read time).
// Quantiles are derived server-side by log-linear interpolation inside the
// containing bucket, so /metrics can answer p50/p95/p99 directly instead
// of leaving the percentile math to every client.

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Bucket layout: bucket 0 is the underflow (v <= 1µs), buckets 1..latSpan
// have upper bounds 1µs·2^(i/latSub) (four sub-buckets per octave, a
// ×1.19 resolution), and the last bucket is the overflow. The top finite
// bound is 1µs·2^24 ≈ 16.8s, comfortably past any per-request deadline.
const (
	latMinNS      = int64(time.Microsecond)
	latSub        = 4
	latOctaves    = 24
	latSpan       = latSub * latOctaves
	numLatBuckets = latSpan + 2
)

// HistogramBound returns the upper bound, in nanoseconds, of bucket i.
// The final (overflow) bucket reports math.MaxInt64.
func HistogramBound(i int) int64 {
	if i <= 0 {
		return latMinNS
	}
	if i >= numLatBuckets-1 {
		return math.MaxInt64
	}
	return int64(float64(latMinNS) * math.Exp2(float64(i)/latSub))
}

// latBucketOf maps a duration in nanoseconds to its bucket index.
func latBucketOf(v int64) int {
	if v <= latMinNS {
		return 0
	}
	i := int(math.Ceil(latSub * math.Log2(float64(v)/float64(latMinNS))))
	if i < 1 {
		i = 1
	}
	if i > numLatBuckets-1 {
		i = numLatBuckets - 1
	}
	return i
}

// Histogram is the lock-free recording side. The zero value is ready to
// use and safe for concurrent Observe/Snapshot from any number of
// goroutines; for contention-free fan-in across a fixed worker pool, give
// each worker its own shard via ShardedHistogram.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0; raced forward by CAS
	max     atomic.Int64
	hasMin  atomic.Bool
	buckets [numLatBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNS(d.Nanoseconds()) }

// ObserveNS records one duration given in nanoseconds.
func (h *Histogram) ObserveNS(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[latBucketOf(v)].Add(1)
	if !h.hasMin.Load() {
		// First observation: publish an initial min. The CAS loop below
		// corrects any race between two first observers.
		if h.hasMin.CompareAndSwap(false, true) {
			h.min.Store(v)
		}
	}
	for {
		m := h.min.Load()
		if v >= m || h.min.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Merge folds o's counters into h on the live type: bucket-wise atomic
// adds plus the same min/max CAS races Observe runs, so both sides may
// keep recording during the merge. Bucket addition is associative and
// commutative, so any merge tree over the same histograms yields the
// same totals (the property test in histogram_merge_test.go holds both
// this and the snapshot Merge to that contract). Nil and empty are no-ops.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count.Load() == 0 {
		return
	}
	omin, omax := o.min.Load(), o.max.Load()
	if !h.hasMin.Load() && h.hasMin.CompareAndSwap(false, true) {
		h.min.Store(omin)
	}
	for {
		m := h.min.Load()
		if omin >= m || h.min.CompareAndSwap(m, omin) {
			break
		}
	}
	for {
		m := h.max.Load()
		if omax <= m || h.max.CompareAndSwap(m, omax) {
			break
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	for i := range h.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
}

// Reset zeroes the histogram. It is not atomic with respect to concurrent
// Observe calls — a racing observation may straddle the wipe — which is
// acceptable for its one caller, the operator-initiated
// POST /debug/metrics/reset between benchmark runs.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(0)
	h.max.Store(0)
	h.hasMin.Store(false)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Snapshot freezes the histogram into the mergeable, JSON-stable view,
// with p50/p95/p99 precomputed.
func (h *Histogram) Snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{
		Count:   h.count.Load(),
		SumNS:   h.sum.Load(),
		Buckets: make([]int64, numLatBuckets),
	}
	if s.Count > 0 {
		s.MinNS = h.min.Load()
		s.MaxNS = h.max.Load()
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.derive()
	return s
}

// HistogramSnapshot is the frozen view: plain values that round-trip
// through JSON, merge bucket-wise, and subtract for windowed readings.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	SumNS int64 `json:"sum_ns"`
	MinNS int64 `json:"min_ns,omitempty"`
	MaxNS int64 `json:"max_ns,omitempty"`
	P50NS int64 `json:"p50_ns"`
	P95NS int64 `json:"p95_ns"`
	P99NS int64 `json:"p99_ns"`
	// Buckets[i] counts observations in bucket i (see HistogramBound).
	Buckets []int64 `json:"buckets"`
}

// derive recomputes the precomputed quantile fields from the buckets.
func (s *HistogramSnapshot) derive() {
	s.P50NS = s.Quantile(0.50)
	s.P95NS = s.Quantile(0.95)
	s.P99NS = s.Quantile(0.99)
}

// Quantile estimates the q-quantile (0 < q <= 1) in nanoseconds by
// log-linear interpolation inside the containing bucket; the estimate is
// clamped to the observed min/max. Error is bounded by one bucket width.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := int64(0)
			if i > 0 {
				lo = HistogramBound(i - 1)
			}
			hi := HistogramBound(i)
			if i == len(s.Buckets)-1 {
				hi = s.MaxNS // overflow bucket: the observed max is the only bound
			}
			frac := (rank - float64(cum)) / float64(n)
			// Interpolate geometrically inside the log-spaced bucket (the
			// documented log-linear scheme); fall back to linear when the
			// lower bound is zero (the underflow bucket has no log scale).
			var est int64
			if lo > 0 && hi > lo {
				est = int64(float64(lo) * math.Pow(float64(hi)/float64(lo), frac))
			} else {
				est = int64(float64(lo) + frac*float64(hi-lo))
			}
			// Clamp to the observed extremes unconditionally: gating the
			// clamp on MinNS/MaxNS != 0 drifted at the zero boundary, where
			// a genuine 0ns minimum was treated as "absent".
			if est < s.MinNS {
				est = s.MinNS
			}
			if est > s.MaxNS {
				est = s.MaxNS
			}
			return est
		}
		cum += n
	}
	return s.MaxNS
}

// Merge folds o into s bucket-wise and rederives the quantiles. Nil is a
// no-op.
func (s *HistogramSnapshot) Merge(o *HistogramSnapshot) {
	if o == nil || o.Count == 0 {
		return
	}
	if s.Buckets == nil {
		s.Buckets = make([]int64, numLatBuckets)
	}
	// o.Count > 0 here, so its extremes are real observations: gate the
	// min on the counts, not on a MinNS != 0 sentinel — a genuine 0ns
	// minimum must win the merge from either side (commutativity).
	if s.Count == 0 || o.MinNS < s.MinNS {
		s.MinNS = o.MinNS
	}
	if s.Count == 0 || o.MaxNS > s.MaxNS {
		s.MaxNS = o.MaxNS
	}
	s.Count += o.Count
	s.SumNS += o.SumNS
	for i := range s.Buckets {
		if i < len(o.Buckets) {
			s.Buckets[i] += o.Buckets[i]
		}
	}
	s.derive()
}

// Sub returns the windowed reading s − o (the observations recorded after
// o was taken): counts and buckets subtract; min/max keep s's values since
// extremes are not subtractable. Callers use it to derive quantiles for a
// bounded interval from two cumulative snapshots of a long-lived daemon.
func (s *HistogramSnapshot) Sub(o *HistogramSnapshot) *HistogramSnapshot {
	out := &HistogramSnapshot{
		Count:   s.Count,
		SumNS:   s.SumNS,
		MinNS:   s.MinNS,
		MaxNS:   s.MaxNS,
		Buckets: append([]int64{}, s.Buckets...),
	}
	if o != nil {
		out.Count -= o.Count
		out.SumNS -= o.SumNS
		for i := range out.Buckets {
			if i < len(o.Buckets) {
				out.Buckets[i] -= o.Buckets[i]
			}
		}
	}
	out.derive()
	return out
}

// Mean is the average observed duration in nanoseconds.
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNS) / float64(s.Count)
}

// ShardedHistogram hands out per-goroutine shards and merges them at read
// time, mirroring the Sharded metrics collector: each worker observes only
// into its own shard (no cross-CPU contention), and bucket addition is
// commutative so the merged snapshot is scheduling-independent.
type ShardedHistogram struct {
	mu     sync.Mutex
	shards []*Histogram
}

// NewShardedHistogram returns an empty shard set.
func NewShardedHistogram() *ShardedHistogram { return &ShardedHistogram{} }

// Shard registers and returns a new shard. Call once per goroutine and
// reuse the result.
func (s *ShardedHistogram) Shard() *Histogram {
	h := &Histogram{}
	s.mu.Lock()
	s.shards = append(s.shards, h)
	s.mu.Unlock()
	return h
}

// Snapshot merges every shard into one frozen view.
func (s *ShardedHistogram) Snapshot() *HistogramSnapshot {
	s.mu.Lock()
	shards := append([]*Histogram{}, s.shards...)
	s.mu.Unlock()
	out := &HistogramSnapshot{Buckets: make([]int64, numLatBuckets)}
	for _, h := range shards {
		out.Merge(h.Snapshot())
	}
	return out
}
