package obs

import (
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/ub"
)

func TestCoverageRegistryAndSnapshot(t *testing.T) {
	RegisterCheckSite(16, "Seq", "test.siteA")
	RegisterCheckSite(16, "Seq", "test.siteA") // duplicate collapses
	RegisterCheckSite(16, "Seq", "test.siteB")
	RegisterCheckSite(39, "DivZero", "test.siteC")

	ResetCoverage()
	CoverageHit(16, false)
	CoverageHit(16, false)
	CoverageHit(16, true)
	CoverageHit(39, false)

	led := CoverageSnapshot()
	if led.Schema != CoverageSchema {
		t.Fatalf("schema %q", led.Schema)
	}
	var r16, r39 *CoverageRow
	for i := range led.Behaviors {
		switch led.Behaviors[i].Code {
		case 16:
			r16 = &led.Behaviors[i]
		case 39:
			r39 = &led.Behaviors[i]
		}
	}
	if r16 == nil || r39 == nil {
		t.Fatal("registered behaviors missing from snapshot")
	}
	if r16.Evaluated != 3 || r16.Fired != 1 {
		t.Fatalf("behavior 16: evaluated/fired %d/%d, want 3/1", r16.Evaluated, r16.Fired)
	}
	if len(r16.Sites) != 2 || r16.Sites[0] != "test.siteA" || r16.Sites[1] != "test.siteB" {
		t.Fatalf("behavior 16 sites %v", r16.Sites)
	}
	if r16.Key != "00016" || r16.Section == "" {
		t.Fatalf("behavior 16 identity %q §%q", r16.Key, r16.Section)
	}
	if r39.Evaluated != 1 || r39.Fired != 0 {
		t.Fatalf("behavior 39: evaluated/fired %d/%d, want 1/0", r39.Evaluated, r39.Fired)
	}
	if b, _ := ub.Lookup(39); r39.Desc != b.Desc {
		t.Fatalf("behavior 39 desc %q", r39.Desc)
	}
	if led.Registered < 2 || led.Fired < 1 || led.Dead != led.Registered-led.Fired {
		t.Fatalf("summary counts %d/%d/%d", led.Registered, led.Fired, led.Dead)
	}
}

func TestCoverageLedgerAddCommutes(t *testing.T) {
	mk := func(code int, eval, fired int64) *CoverageLedger {
		l := &CoverageLedger{Schema: CoverageSchema, Behaviors: []CoverageRow{{
			Code: code, Key: CheckKey(code), Gates: []string{"Always"}, Sites: []string{"s"},
			Evaluated: eval, Fired: fired,
		}}}
		l.recount()
		return l
	}
	a := mk(16, 10, 2)
	a.Add(mk(16, 5, 0))
	a.Add(mk(39, 7, 7))
	if a.Behaviors[0].Evaluated != 15 || a.Behaviors[0].Fired != 2 {
		t.Fatalf("merged row: %+v", a.Behaviors[0])
	}
	if a.Registered != 2 || a.Fired != 2 || a.Dead != 0 {
		t.Fatalf("merged summary %d/%d/%d", a.Registered, a.Fired, a.Dead)
	}

	b := mk(39, 7, 7)
	b.Add(mk(16, 5, 0))
	b.Add(mk(16, 10, 2))
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("ledger Add not order-independent:\n%s\n%s", aj, bj)
	}
	a.Add(nil) // no-op
}

func TestCoverageHitConcurrent(t *testing.T) {
	ResetCoverage()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				CoverageHit(31, i%10 == 0)
			}
		}()
	}
	wg.Wait()
	if got := coverageEvaluated[31].Load(); got != 80000 {
		t.Fatalf("evaluated %d, want 80000", got)
	}
	if got := coverageFired[31].Load(); got != 8000 {
		t.Fatalf("fired %d, want 8000", got)
	}
	ResetCoverage()
}

// TestCoverageLedgerAllocs is the make-check gate: the ledger hot path —
// one CoverageHit per check evaluation — must not allocate.
func TestCoverageLedgerAllocs(t *testing.T) {
	if n := testing.AllocsPerRun(1000, func() {
		CoverageHit(16, false)
		CoverageHit(16, true)
	}); n != 0 {
		t.Fatalf("CoverageHit allocates %.1f per run, want 0", n)
	}
	ResetCoverage()
}
