package obs

// The span wire form and cross-node trace assembly. A Span itself never
// crosses the network (it holds a live Collector reference and a
// monotonic start time); SpanJSON is the explicit wire shape of
// GET /v1/spans/{trace}, and AssembleChromeTrace stitches span sets from
// several processes — the router and every shard a request touched —
// into one Chrome trace with one named process row per node.

import (
	"sort"
	"strconv"
	"time"
)

// SpanJSON is one span on the wire (undefc.spans/v1 entries).
type SpanJSON struct {
	TraceID string `json:"trace_id"`
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	Name    string `json:"name"`
	StartNS int64  `json:"start_unix_ns"`
	DurNS   int64  `json:"dur_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// SpanToJSON converts one span to its wire form.
func SpanToJSON(s *Span) SpanJSON {
	return SpanJSON{
		TraceID: FormatTraceID(s.TraceID),
		ID:      s.ID,
		Parent:  s.Parent,
		Name:    s.Name,
		StartNS: s.Start.UnixNano(),
		DurNS:   int64(s.Dur),
		Attrs:   s.Attrs,
	}
}

// SpansToJSON converts a span list (the SpanRing.Get shape).
func SpansToJSON(spans []Span) []SpanJSON {
	out := make([]SpanJSON, len(spans))
	for i := range spans {
		out[i] = SpanToJSON(&spans[i])
	}
	return out
}

// SpanFromJSON is the inverse of SpanToJSON (col is left nil; the span is
// data, not a live recording handle).
func SpanFromJSON(j SpanJSON) (Span, error) {
	tid, err := ParseTraceID(j.TraceID)
	if err != nil {
		return Span{}, err
	}
	return Span{
		TraceID: tid,
		ID:      j.ID,
		Parent:  j.Parent,
		Name:    j.Name,
		Start:   time.Unix(0, j.StartNS),
		Dur:     time.Duration(j.DurNS),
		Attrs:   j.Attrs,
	}, nil
}

// ProcessSpans is one node's contribution to an assembled trace.
type ProcessSpans struct {
	// Name labels the process row ("router", "shard s1 (inst 3f2a...)").
	Name  string
	Spans []Span
}

// AssembleChromeTrace stitches span sets from several processes into one
// Chrome trace: each process gets its own pid with a process_name
// metadata event, timestamps are rebased to the earliest span start
// across all processes, and events are ordered by start time then span
// ID within each process — deterministic for a given input.
func AssembleChromeTrace(procs []ProcessSpans) *ChromeTrace {
	tr := &ChromeTrace{TraceEvents: []ChromeEvent{}}
	var base time.Time
	haveBase := false
	for _, p := range procs {
		for i := range p.Spans {
			if st := p.Spans[i].Start; !haveBase || st.Before(base) {
				base, haveBase = st, true
			}
		}
	}
	for pi, p := range procs {
		pid := pi + 1
		tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
			Name: "process_name",
			Ph:   "M",
			PID:  pid,
			Args: map[string]string{"name": p.Name},
		})
		spans := append([]Span{}, p.Spans...)
		sort.Slice(spans, func(i, j int) bool {
			if !spans[i].Start.Equal(spans[j].Start) {
				return spans[i].Start.Before(spans[j].Start)
			}
			return spans[i].ID < spans[j].ID
		})
		for i := range spans {
			s := &spans[i]
			args := map[string]string{
				"span":   strconv.FormatUint(s.ID, 10),
				"parent": strconv.FormatUint(s.Parent, 10),
			}
			for _, a := range s.Attrs {
				args[a.Key] = a.Val
			}
			tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
				Name: s.Name,
				Ph:   "X",
				TS:   s.Start.Sub(base).Microseconds(),
				Dur:  s.Dur.Microseconds(),
				PID:  pid,
				TID:  s.TraceID,
				Args: args,
			})
		}
	}
	return tr
}
