package obs

// Property tests for histogram merging: merge must be commutative and
// associative (so cluster-level aggregation is deterministic regardless
// of shard fan-out order), the live-type Merge must agree with the
// snapshot Merge, and quantiles of merged histograms must respect the
// observed extremes — including the 0ns boundary, where the old
// MinNS != 0 sentinel drifted.

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomHistogram fills a histogram with values that deliberately include
// zero, exact bucket bounds, and overflow values.
func randomHistogram(rng *rand.Rand, n int) *Histogram {
	h := &Histogram{}
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0:
			h.ObserveNS(0)
		case 1:
			h.ObserveNS(HistogramBound(rng.Intn(numLatBuckets - 1)))
		case 2:
			h.ObserveNS(rng.Int63n(2_000_000))
		case 3:
			h.ObserveNS(20_000_000_000 + rng.Int63n(1_000_000_000)) // overflow
		default:
			h.ObserveNS(1 + rng.Int63n(500_000_000))
		}
	}
	return h
}

func mergedSnap(snaps ...*HistogramSnapshot) *HistogramSnapshot {
	out := &HistogramSnapshot{}
	for _, s := range snaps {
		out.Merge(s)
	}
	return out
}

func TestHistogramMergeCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a := randomHistogram(rng, rng.Intn(200)).Snapshot()
		b := randomHistogram(rng, rng.Intn(200)).Snapshot()
		c := randomHistogram(rng, rng.Intn(200)).Snapshot()

		ab := mergedSnap(a, b)
		ba := mergedSnap(b, a)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("trial %d: merge not commutative:\na+b %+v\nb+a %+v", trial, ab, ba)
		}

		abc := mergedSnap(mergedSnap(a, b), c)
		acb := mergedSnap(a, mergedSnap(b, c))
		if !reflect.DeepEqual(abc, acb) {
			t.Fatalf("trial %d: merge not associative:\n(a+b)+c %+v\na+(b+c) %+v", trial, abc, acb)
		}

		// Identity: merging an empty snapshot changes nothing.
		withEmpty := mergedSnap(a, &HistogramSnapshot{})
		alone := mergedSnap(a)
		if !reflect.DeepEqual(withEmpty, alone) {
			t.Fatalf("trial %d: empty merge not identity", trial)
		}
	}
}

func TestHistogramLiveMergeAgreesWithSnapshotMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		h1 := randomHistogram(rng, 100)
		h2 := randomHistogram(rng, 100)
		want := mergedSnap(h1.Snapshot(), h2.Snapshot())
		h1.Merge(h2)
		got := h1.Snapshot()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: live Merge disagrees with snapshot Merge:\nlive %+v\nsnap %+v", trial, got, want)
		}
	}
	// Nil and empty are no-ops.
	h := randomHistogram(rng, 10)
	before := h.Snapshot()
	h.Merge(nil)
	h.Merge(&Histogram{})
	if !reflect.DeepEqual(h.Snapshot(), before) {
		t.Fatal("nil/empty live merge was not a no-op")
	}
}

// TestHistogramQuantileBoundaries pins the boundary behavior the property
// test exposed: a histogram of identical values must report that exact
// value for every quantile — including 0ns, where the old MinNS != 0
// clamp sentinel let the estimate drift into the bucket interior — and
// merged quantiles must stay within the merged observed range.
func TestHistogramQuantileBoundaries(t *testing.T) {
	for _, v := range []int64{0, 1, latMinNS, HistogramBound(1), HistogramBound(17), 123_456_789} {
		var h Histogram
		for i := 0; i < 10; i++ {
			h.ObserveNS(v)
		}
		s := h.Snapshot()
		for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1.0} {
			if got := s.Quantile(q); got != v {
				t.Fatalf("uniform value %d: Quantile(%v) = %d, want %d", v, q, got, v)
			}
		}
	}

	var zero, high Histogram
	zero.ObserveNS(0)
	high.ObserveNS(5_000_000)
	merged := mergedSnap(zero.Snapshot(), high.Snapshot())
	flipped := mergedSnap(high.Snapshot(), zero.Snapshot())
	if merged.MinNS != 0 || flipped.MinNS != 0 {
		t.Fatalf("0ns minimum lost in merge: %d / %d", merged.MinNS, flipped.MinNS)
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := merged.Quantile(q); got < 0 || got > 5_000_000 {
			t.Fatalf("merged Quantile(%v) = %d outside observed range", q, got)
		}
	}
}
