package obs

import (
	"math"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond) // underflow bucket
	h.Observe(3 * time.Microsecond)
	h.Observe(40 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count %d, want 3", s.Count)
	}
	if s.SumNS != 500+3000+40_000_000 {
		t.Fatalf("sum %d", s.SumNS)
	}
	if s.MinNS != 500 || s.MaxNS != 40_000_000 {
		t.Fatalf("min/max %d/%d", s.MinNS, s.MaxNS)
	}
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	if total != 3 {
		t.Fatalf("bucket total %d, want 3", total)
	}
	if s.Buckets[0] != 1 {
		t.Fatalf("underflow bucket %d, want 1", s.Buckets[0])
	}
}

func TestHistogramBounds(t *testing.T) {
	// Bounds are monotonically increasing and bucketing is consistent with
	// them: a value lands in the first bucket whose bound is >= the value.
	for i := 1; i < numLatBuckets-1; i++ {
		lo, hi := HistogramBound(i-1), HistogramBound(i)
		if hi <= lo {
			t.Fatalf("bounds not increasing at %d: %d <= %d", i, hi, lo)
		}
		if b := latBucketOf(hi); b != i {
			t.Fatalf("latBucketOf(bound(%d)) = %d, want %d", i, b, i)
		}
		if b := latBucketOf(lo + 1); b != i {
			t.Fatalf("latBucketOf(bound(%d)+1) = %d, want %d", i-1, b, i)
		}
	}
	if latBucketOf(math.MaxInt64) != numLatBuckets-1 {
		t.Fatal("huge value not clamped into the overflow bucket")
	}
}

// TestHistogramShardedMergeConcurrent exercises sharded concurrent
// recording under the race detector (make check runs this package with
// -race) and checks the merged snapshot is exactly the sum of the work.
func TestHistogramShardedMergeConcurrent(t *testing.T) {
	const workers = 8
	const perWorker = 5000
	sh := NewShardedHistogram()
	var wg sync.WaitGroup
	var wantSum int64
	for w := 0; w < workers; w++ {
		// Deterministic per-worker workload; the sum is scheduling-free.
		for i := 0; i < perWorker; i++ {
			wantSum += int64(1000 * (w*perWorker + i + 1))
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := sh.Shard()
			for i := 0; i < perWorker; i++ {
				h.ObserveNS(int64(1000 * (w*perWorker + i + 1)))
			}
		}(w)
	}
	wg.Wait()
	s := sh.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("merged count %d, want %d", s.Count, workers*perWorker)
	}
	if s.SumNS != wantSum {
		t.Fatalf("merged sum %d, want %d", s.SumNS, wantSum)
	}
	if s.MinNS != 1000 || s.MaxNS != int64(1000*workers*perWorker) {
		t.Fatalf("merged min/max %d/%d", s.MinNS, s.MaxNS)
	}
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

// TestHistogramQuantileAccuracy checks the derived quantiles against the
// exact order statistics of a known distribution: the estimate must land
// within one bucket width of the true value.
func TestHistogramQuantileAccuracy(t *testing.T) {
	// A log-uniform-ish spread across three decades plus a heavy cluster,
	// the shape request latencies actually have.
	var values []int64
	for i := 0; i < 900; i++ {
		values = append(values, int64(50_000+i*100)) // 50µs..140µs cluster
	}
	for i := 0; i < 90; i++ {
		values = append(values, int64(1_000_000+i*10_000)) // 1ms..1.9ms tail
	}
	for i := 0; i < 10; i++ {
		values = append(values, int64(20_000_000+i*1_000_000)) // 20ms..29ms spikes
	}
	var h Histogram
	for _, v := range values {
		h.ObserveNS(v)
	}
	sorted := append([]int64{}, values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s := h.Snapshot()
	for _, q := range []float64{0.50, 0.95, 0.99} {
		exact := sorted[int(math.Ceil(q*float64(len(sorted))))-1]
		est := s.Quantile(q)
		b := latBucketOf(exact)
		lo := int64(0)
		if b > 0 {
			lo = HistogramBound(b - 1)
		}
		width := HistogramBound(b) - lo
		if diff := est - exact; diff < -width || diff > width {
			t.Fatalf("q%.2f: estimate %d vs exact %d (diff %d, bucket width %d)",
				q, est, exact, est-exact, width)
		}
	}
	if s.P50NS != s.Quantile(0.50) || s.P95NS != s.Quantile(0.95) || s.P99NS != s.Quantile(0.99) {
		t.Fatal("precomputed quantile fields disagree with Quantile")
	}
}

func TestHistogramSnapshotSub(t *testing.T) {
	var h Histogram
	h.ObserveNS(1_000_000)
	h.ObserveNS(2_000_000)
	before := h.Snapshot()
	h.ObserveNS(8_000_000)
	h.ObserveNS(9_000_000)
	after := h.Snapshot()
	delta := after.Sub(before)
	if delta.Count != 2 || delta.SumNS != 17_000_000 {
		t.Fatalf("delta count/sum %d/%d, want 2/17000000", delta.Count, delta.SumNS)
	}
	// The windowed quantiles reflect only the new observations.
	if p50 := delta.Quantile(0.50); p50 < 7_000_000 {
		t.Fatalf("windowed p50 %d reflects pre-window observations", p50)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.ObserveNS(5_000_000)
	h.Reset()
	s := h.Snapshot()
	if s.Count != 0 || s.SumNS != 0 || s.MinNS != 0 || s.MaxNS != 0 {
		t.Fatalf("reset left state behind: %+v", s)
	}
	h.ObserveNS(1000)
	if s := h.Snapshot(); s.Count != 1 || s.MinNS != 1000 {
		t.Fatalf("histogram unusable after reset: %+v", s)
	}
}

func TestGaugeReset(t *testing.T) {
	var g Gauge
	g.Add(5)
	g.Add(-3)
	if g.Max() != 5 {
		t.Fatalf("max %d, want 5", g.Max())
	}
	g.Reset()
	if g.Load() != 2 {
		t.Fatalf("Reset changed the level: %d", g.Load())
	}
	if g.Max() != 2 {
		t.Fatalf("Reset did not rebase the high-water mark: %d", g.Max())
	}
	g.Add(1)
	if g.Max() != 3 {
		t.Fatalf("high-water mark dead after Reset: %d", g.Max())
	}
}
