package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/tools"
)

var update = flag.Bool("update", false, "rewrite the golden fixtures under testdata/")

// newTestServer mounts a fresh service instance on an httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func post(t *testing.T, url, path string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func metrics(t *testing.T, url string) *MetricsResponse {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return &m
}

// zeroNS recursively zeroes every *_ns field of a decoded JSON document —
// timings are the only nondeterministic part of a response.
func zeroNS(v any) {
	switch x := v.(type) {
	case map[string]any:
		for k, val := range x {
			if strings.HasSuffix(k, "_ns") {
				if _, ok := val.(float64); ok {
					x[k] = float64(0)
				}
				continue
			}
			zeroNS(val)
		}
	case []any:
		for _, e := range x {
			zeroNS(e)
		}
	}
}

// normalize re-encodes a JSON body with *_ns fields zeroed, indented, so
// fixture diffs read like the wire format.
func normalize(t *testing.T, raw []byte) []byte {
	t.Helper()
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, raw)
	}
	zeroNS(doc)
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// golden compares got against testdata/<name>, rewriting it under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run go test ./internal/server -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func readFixture(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestAnalyzeGolden pins the /v1/analyze request and response shapes: the
// fixture request (an uninitialized read, CWE-457 shape) must produce the
// fixture response byte for byte, timings aside.
func TestAnalyzeGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := readFixture(t, "analyze_request.json")
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	raw.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200\n%s", resp.StatusCode, raw.Bytes())
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	golden(t, "analyze_response.json", normalize(t, raw.Bytes()))
}

// TestBatchGolden pins the /v1/batch NDJSON framing: header line, one cell
// line per case×tool in deterministic order (parallelism 1), trailer line.
func TestBatchGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := readFixture(t, "batch_request.json")
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var norm bytes.Buffer
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var doc any
		if err := json.Unmarshal(line, &doc); err != nil {
			t.Fatalf("stream line is not JSON: %v\n%s", err, line)
		}
		zeroNS(doc)
		out, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		norm.Write(out)
		norm.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	golden(t, "batch_response.ndjson", norm.Bytes())
}

// TestPanicQuarantine is the availability contract: a request whose
// handling panics gets a structured internal-error verdict with the serve
// stage's fault attached, and the daemon keeps serving — the very next
// request succeeds.
func TestPanicQuarantine(t *testing.T) {
	rules, err := fault.ParseSpec("server.handle=panic*1")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Injector: fault.NewInjector(1, rules...)})

	resp, body := post(t, ts.URL, "/v1/analyze", AnalyzeRequest{Source: "int main(void){return 0;}"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected-panic status = %d, want 500\n%s", resp.StatusCode, body)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("panic response is not an AnalyzeResponse: %v\n%s", err, body)
	}
	if ar.Result.Verdict != tools.InternalError {
		t.Errorf("verdict = %v, want internal-error", ar.Result.Verdict)
	}
	if ar.Result.Fault == nil {
		t.Fatalf("no fault attached to internal-error result:\n%s", body)
	}
	if ar.Result.Fault.Stage != fault.StageServe {
		t.Errorf("fault stage = %q, want %q", ar.Result.Fault.Stage, fault.StageServe)
	}

	// The daemon must still be serving.
	resp, body = post(t, ts.URL, "/v1/analyze", AnalyzeRequest{Source: "int main(void){return 0;}"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic status = %d, want 200\n%s", resp.StatusCode, body)
	}
	m := metrics(t, ts.URL)
	if m.Panics != 1 {
		t.Errorf("metrics panics = %d, want 1", m.Panics)
	}
	if m.Verdicts["internal-error"] != 1 || m.Verdicts["accepted"] != 1 {
		t.Errorf("verdict counters = %v, want internal-error:1 accepted:1", m.Verdicts)
	}
}

// TestCoalesceConcurrent submits N identical requests while the first is
// deliberately held in flight (a one-shot injected delay) and asserts the
// whole burst cost exactly one compile and one analysis: one leader,
// N-1 followers, every response carrying the same verdict. Run under
// -race this also exercises the coalescer's publication ordering.
func TestCoalesceConcurrent(t *testing.T) {
	const n = 6
	rules, err := fault.ParseSpec("server.handle=delay:500ms*1")
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(1, rules...)
	leaderIn := make(chan struct{})
	inj.OnFire(func(fault.Hit) { close(leaderIn) })
	srv, ts := newTestServer(t, Config{Injector: inj})

	req := AnalyzeRequest{Source: "int main(void){int x; return x;}", File: "dup.c"}
	type reply struct {
		status int
		resp   AnalyzeResponse
	}
	replies := make([]reply, n)
	var wg sync.WaitGroup
	launch := func(i int) {
		defer wg.Done()
		b, _ := json.Marshal(req)
		httpResp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Errorf("request %d: %v", i, err)
			return
		}
		defer httpResp.Body.Close()
		replies[i].status = httpResp.StatusCode
		if err := json.NewDecoder(httpResp.Body).Decode(&replies[i].resp); err != nil {
			t.Errorf("request %d: decode: %v", i, err)
		}
	}

	wg.Add(1)
	go launch(0)
	select {
	case <-leaderIn:
	case <-time.After(5 * time.Second):
		t.Fatal("leader never reached the serve stage")
	}
	// The leader is now sleeping inside its flight; everything submitted
	// from here until it wakes must coalesce onto it.
	for i := 1; i < n; i++ {
		wg.Add(1)
		go launch(i)
	}
	wg.Wait()

	var followers int
	for i, r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, r.status)
		}
		if r.resp.Result.Verdict != replies[0].resp.Result.Verdict {
			t.Errorf("request %d: verdict %v differs from leader's %v",
				i, r.resp.Result.Verdict, replies[0].resp.Result.Verdict)
		}
		if r.resp.Coalesced {
			followers++
		}
	}
	if followers != n-1 {
		t.Errorf("coalesced responses = %d, want %d", followers, n-1)
	}
	cs := srv.CacheStats()
	if cs.Misses != 1 {
		t.Errorf("compiles = %d, want exactly 1 (the leader's)", cs.Misses)
	}
	m := metrics(t, ts.URL)
	if m.Coalesce.Leaders != 1 || m.Coalesce.Followers != n-1 {
		t.Errorf("coalesce stats = %+v, want 1 leader / %d followers", m.Coalesce, n-1)
	}
	if m.Verdicts[replies[0].resp.Result.Verdict.String()] != n {
		t.Errorf("verdict counter = %v, want %d for %v", m.Verdicts, n, replies[0].resp.Result.Verdict)
	}
}

// TestQueueBackpressure exercises the admission queue directly: capacity
// concurrency=1 depth=1 means one executes, one waits, the third is
// refused immediately, and a waiter whose context ends is released.
func TestQueueBackpressure(t *testing.T) {
	q := newQueue(1, 1)
	release, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	admitted := make(chan func(), 1)
	go func() {
		r2, err := q.Acquire(context.Background())
		if err != nil {
			t.Errorf("waiter: %v", err)
			return
		}
		admitted <- r2
	}()
	// Wait until the waiter is counted before testing rejection.
	deadline := time.Now().Add(5 * time.Second)
	for q.Stats().Depth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := q.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third acquire: err = %v, want ErrQueueFull", err)
	}

	release()
	var r2 func()
	select {
	case r2 = <-admitted:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never admitted after release")
	}
	r2()

	ctx, cancel := context.WithCancel(context.Background())
	release, err = q.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := q.Acquire(ctx)
		errc <- err
	}()
	for q.Stats().Depth == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: err = %v, want context.Canceled", err)
	}
	release()

	st := q.Stats()
	if st.Admitted != 3 || st.Rejected != 1 || st.Cancelled != 1 {
		t.Errorf("stats = %+v, want admitted 3 / rejected 1 / cancelled 1", st)
	}
	if st.Depth != 0 || st.Active != 0 {
		t.Errorf("queue not drained: %+v", st)
	}
}

// TestQueueFullHTTP drives the backpressure path over the wire: with one
// slot and zero wait depth, a second concurrent request answers 429 with
// Retry-After while the first is still running.
func TestQueueFullHTTP(t *testing.T) {
	rules, err := fault.ParseSpec("server.handle=delay:500ms*1")
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(1, rules...)
	leaderIn := make(chan struct{})
	inj.OnFire(func(fault.Hit) { close(leaderIn) })
	// depth -1 is not expressible (0 defaults to 64), so use depth 1 and
	// fill the wait line with a second long request... simpler: concurrency
	// 1, depth 1, and three requests: run, wait, reject.
	_, ts := newTestServer(t, Config{Concurrency: 1, QueueDepth: 1, Injector: inj})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		post(t, ts.URL, "/v1/analyze", AnalyzeRequest{Source: "int main(void){return 0;}", File: "a.c"})
	}()
	<-leaderIn

	// Occupy the single wait slot with a *different* source (no coalescing).
	wg.Add(1)
	waiting := make(chan struct{})
	go func() {
		defer wg.Done()
		close(waiting)
		post(t, ts.URL, "/v1/analyze", AnalyzeRequest{Source: "int main(void){return 1;}", File: "b.c"})
	}()
	<-waiting
	// Give the waiter time to reach the queue before the probe.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := metrics(t, ts.URL); m.Queue.Depth >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, body := post(t, ts.URL, "/v1/analyze", AnalyzeRequest{Source: "int main(void){return 2;}", File: "c.c"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429\n%s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error.Code != "queue-full" {
		t.Errorf("429 body = %s, want code queue-full", body)
	}
	wg.Wait()
}

// TestCoalescerForgetsCompletedFlights pins the no-stale-results property:
// coalescing is in-flight deduplication only, so a key is re-run once its
// flight completes.
func TestCoalescerForgetsCompletedFlights(t *testing.T) {
	c := newCoalescer()
	runs := 0
	fn := func() outcome { runs++; return outcome{status: 200} }
	if _, follower := c.do("k", fn); follower {
		t.Fatal("first call was a follower")
	}
	if _, follower := c.do("k", fn); follower {
		t.Fatal("second sequential call was a follower")
	}
	if runs != 2 {
		t.Fatalf("fn ran %d times, want 2 (one per completed flight)", runs)
	}
}

// TestBadRequests sweeps the request-validation edges.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSourceBytes: 256})
	cases := []struct {
		name   string
		path   string
		body   string
		status int
		code   string
	}{
		{"empty source", "/v1/analyze", `{}`, 400, "bad-request"},
		{"malformed json", "/v1/analyze", `{"source":`, 400, "bad-request"},
		{"unknown field", "/v1/analyze", `{"source":"int main(void){}","nope":1}`, 400, "bad-request"},
		{"unknown model", "/v1/analyze", `{"source":"int main(void){}","model":"PDP11"}`, 400, "bad-request"},
		{"unknown tool", "/v1/analyze", `{"source":"int main(void){}","tool":"lint"}`, 400, "bad-request"},
		{"bad timeout", "/v1/analyze", `{"source":"int main(void){}","timeout":"fast"}`, 400, "bad-request"},
		{"oversized body", "/v1/analyze", `{"source":"` + strings.Repeat("x", 300) + `"}`, 413, "too-large"},
		{"suite and cases", "/v1/batch", `{"suite":"juliet","cases":[{"name":"a","source":"int main(void){}"}]}`, 400, "bad-request"},
		{"unknown suite", "/v1/batch", `{"suite":"spec2000"}`, 400, "bad-request"},
		{"empty batch", "/v1/batch", `{}`, 400, "bad-request"},
		{"unnamed case", "/v1/batch", `{"cases":[{"source":"int main(void){}"}]}`, 400, "bad-request"},
		{"explore empty", "/v1/explore", `{}`, 400, "bad-request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var er ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatalf("error body is not an ErrorResponse: %v", err)
			}
			if resp.StatusCode != tc.status || er.Error.Code != tc.code {
				t.Errorf("got %d %q, want %d %q (%s)", resp.StatusCode, er.Error.Code, tc.status, tc.code, er.Error.Message)
			}
		})
	}
}

// TestRouteDiscipline covers the method check and the 404 fallback.
func TestRouteDiscipline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/analyze = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow = %q, want POST", allow)
	}
	resp, err = http.Get(ts.URL + "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route = %d, want 404", resp.StatusCode)
	}
}

// TestHealthzDrain covers the liveness/readiness split: /healthz stays
// 200 for the whole process lifetime (a draining shard is still alive —
// restarting it would lose the drain), while /readyz flips to 503 +
// Retry-After once draining so a router stops routing to it.
func TestHealthzDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		want := http.StatusOK
		if path == "/readyz" {
			// No compile has happened yet: the shard is cold.
			want = http.StatusServiceUnavailable
		}
		if resp.StatusCode != want {
			t.Errorf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	if err := srv.Warmup(context.Background()); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("warm readyz = %d, want 200", resp.StatusCode)
	}
	srv.SetDraining(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("draining healthz = %d, want 200 (liveness, not readiness)", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "draining") {
		t.Errorf("draining readyz body = %q, want to mention draining", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining readyz without Retry-After")
	}
	if !metrics(t, ts.URL).Draining {
		t.Error("metrics does not report draining")
	}
}

// TestAdaptiveRetryAfter: the backpressure pacing hint is derived from
// backlog × recent service time across the executor count, not a
// hardcoded "1" — a router backing off by it arrives when a slot is
// plausibly free.
func TestAdaptiveRetryAfter(t *testing.T) {
	srv, ts := newTestServer(t, Config{Concurrency: 1})
	// Prime the EWMA as if recent requests took ~8s each: with an empty
	// queue the backlog is just the arrival itself, so the hint is 8s.
	srv.ewmaServiceNS.Store((8 * time.Second).Nanoseconds())
	srv.SetDraining(true)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Retry-After"); got != "8" {
		t.Errorf("Retry-After = %q, want \"8\" (1 backlog × 8s EWMA / 1 executor)", got)
	}
	// Before any request has been observed the hint degrades to 1s.
	srv.ewmaServiceNS.Store(0)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("cold Retry-After = %q, want \"1\"", got)
	}
}

// TestInstanceHeader: every response carries the process's boot identity
// (and the shard name when configured) — the handles a cluster router
// uses to attribute delivered verdicts to incarnations.
func TestInstanceHeader(t *testing.T) {
	srv, ts := newTestServer(t, Config{ShardID: "s7"})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Undefc-Instance"); got == "" || got != srv.Instance() {
		t.Errorf("X-Undefc-Instance = %q, want %q", got, srv.Instance())
	}
	if got := resp.Header.Get("X-Undefc-Shard"); got != "s7" {
		t.Errorf("X-Undefc-Shard = %q, want s7", got)
	}
	if m := metrics(t, ts.URL); m.Instance != srv.Instance() || m.ShardID != "s7" {
		t.Errorf("metrics instance/shard = %q/%q, want %q/s7", m.Instance, m.ShardID, srv.Instance())
	}
}

// TestExplore drives /v1/explore end to end on a program whose behavior
// depends on evaluation order (paper §2.5.2's shape).
func TestExplore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := `
int x = 0;
int set(void) { x = 1; return 1; }
int get(void) { return x; }
int main(void) { return set() + get(); }
`
	resp, body := post(t, ts.URL, "/v1/explore", ExploreRequest{Source: src, File: "order.c"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	var er ExploreResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Schema != APISchema || er.Runs == 0 || len(er.Outcomes) == 0 {
		t.Errorf("explore response = %+v, want schema %q with runs and outcomes", er, APISchema)
	}
	// A compile error is a client error, not a server one.
	resp, body = post(t, ts.URL, "/v1/explore", ExploreRequest{Source: "int main(void) { return }"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("compile-error status = %d, want 422\n%s", resp.StatusCode, body)
	}
}

// TestBatchSuiteStream runs a built-in suite through /v1/batch and checks
// the stream frames: header cases == cell lines == trailer accounting.
func TestBatchSuiteStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL, "/v1/batch", BatchRequest{Suite: "own", Parallelism: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("stream has %d lines, want header + cells + trailer", len(lines))
	}
	var hdr BatchHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Schema != APISchema || hdr.Cases == 0 {
		t.Fatalf("header = %+v", hdr)
	}
	cells := lines[1 : len(lines)-1]
	if len(cells) != hdr.Cases*len(hdr.Tools) {
		t.Errorf("cell lines = %d, want %d cases × %d tools", len(cells), hdr.Cases, len(hdr.Tools))
	}
	seen := map[string]bool{}
	for _, l := range cells {
		var c BatchCellLine
		if err := json.Unmarshal(l, &c); err != nil {
			t.Fatalf("cell line: %v\n%s", err, l)
		}
		seen[c.Case+"/"+c.Tool] = true
	}
	if len(seen) != len(cells) {
		t.Errorf("duplicate cells in stream: %d distinct of %d", len(seen), len(cells))
	}
	var tr BatchTrailer
	if err := json.Unmarshal(lines[len(lines)-1], &tr); err != nil {
		t.Fatal(err)
	}
	if !tr.Done || tr.Error != nil {
		t.Errorf("trailer = %+v, want done with no error", tr)
	}
	// Every case does exactly one cache lookup (errors are a subset of
	// compiles, not a third bucket).
	if got := tr.Frontend.Compiles + tr.Frontend.CacheHits; got != hdr.Cases {
		t.Errorf("frontend accounting covers %d cases, want %d", got, hdr.Cases)
	}
	m := metrics(t, ts.URL)
	var counted int64
	for _, n := range m.BatchCells {
		counted += n
	}
	if counted != int64(len(cells)) {
		t.Errorf("batch_cells counters sum to %d, want %d", counted, len(cells))
	}
}

// TestBatchPanicTrailer: a panic mid-batch (after the header is on the
// wire) must surface as an error trailer, not a dead connection, and the
// server must keep serving.
func TestBatchPanicTrailer(t *testing.T) {
	rules, err := fault.ParseSpec("runner.analyze=panic*1")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Injector: fault.NewInjector(1, rules...)})
	resp, body := post(t, ts.URL, "/v1/batch", BatchRequest{
		Cases: []BatchCase{{Name: "one", Source: "int main(void){return 0;}"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	var tr BatchTrailer
	if err := json.Unmarshal(lines[len(lines)-1], &tr); err != nil {
		t.Fatal(err)
	}
	// runner.analyze panics are contained per cell by the runner itself, so
	// the batch completes with the cell carrying an internal-error verdict.
	if !tr.Done {
		t.Errorf("trailer = %+v, want done (cell-level containment)", tr)
	}
	var cell BatchCellLine
	if err := json.Unmarshal(lines[1], &cell); err != nil {
		t.Fatal(err)
	}
	if cell.Verdict != tools.InternalError {
		t.Errorf("cell verdict = %v, want internal-error", cell.Verdict)
	}
	// Daemon lives.
	resp, _ = post(t, ts.URL, "/v1/analyze", AnalyzeRequest{Source: "int main(void){return 0;}"})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-panic analyze = %d, want 200", resp.StatusCode)
	}
}

// TestConfigEndpoint sanity-checks /debug/config reflects defaulting.
func TestConfigEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 7, Model: "ILP32"})
	resp, err := http.Get(ts.URL + "/debug/config")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr ConfigResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.QueueDepth != 7 || cr.Model != "ILP32" || cr.Concurrency < 1 || cr.DefaultTimeout == "" {
		t.Errorf("config = %+v", cr)
	}
}

// TestParseTimeout pins the clamp rules.
func TestParseTimeout(t *testing.T) {
	def, max := 5*time.Second, 30*time.Second
	cases := []struct {
		in   string
		want time.Duration
		err  bool
	}{
		{"", def, false},
		{"2s", 2 * time.Second, false},
		{"1m", max, false},  // above ceiling: clamped
		{"-1s", max, false}, // nonsense sign: clamped
		{"fast", 0, true},
	}
	for _, tc := range cases {
		got, err := parseTimeout(tc.in, def, max)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("parseTimeout(%q) = %v, %v; want %v, err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
}

// TestExploreGolden pins the buffered /v1/explore document: the paper's
// setDenom program (§2.5.2) at parallelism 1 with default POR, so outcome
// discovery order, run counts and pruning stats are all deterministic.
func TestExploreGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := readFixture(t, "explore_request.json")
	resp, err := http.Post(ts.URL+"/v1/explore", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	raw.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200\n%s", resp.StatusCode, raw.Bytes())
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	golden(t, "explore_response.json", normalize(t, raw.Bytes()))
}

// TestExploreStreamGolden pins the streamed form of the same request:
// Accept: application/x-ndjson negotiates header / outcome-line / trailer
// frames, exactly like /v1/batch.
func TestExploreStreamGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, err := http.NewRequest("POST", ts.URL+"/v1/explore",
		bytes.NewReader(readFixture(t, "explore_request.json")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var norm bytes.Buffer
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var doc any
		if err := json.Unmarshal(line, &doc); err != nil {
			t.Fatalf("stream line is not JSON: %v\n%s", err, line)
		}
		zeroNS(doc)
		out, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		norm.Write(out)
		norm.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	golden(t, "explore_response.ndjson", norm.Bytes())
}

// TestExploreStreamAccounting checks the streamed frames against each
// other and against /metrics: outcome lines == trailer count, trailer
// done, and the server-side explore counters advance by this search.
func TestExploreStreamAccounting(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(ExploreRequest{
		Source: `
int x = 0;
int set(void) { x = 1; return 1; }
int get(void) { return x; }
int main(void) { return set() + get(); }
`,
		Parallelism: 2,
	})
	req, err := http.NewRequest("POST", ts.URL+"/v1/explore", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	raw.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d\n%s", resp.StatusCode, raw.Bytes())
	}
	lines := bytes.Split(bytes.TrimSpace(raw.Bytes()), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("stream has %d lines, want header + outcomes + trailer", len(lines))
	}
	var hdr ExploreHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Schema != APISchema || hdr.MaxRuns == 0 {
		t.Fatalf("header = %+v", hdr)
	}
	outcomes := lines[1 : len(lines)-1]
	for _, l := range outcomes {
		var o ExploreOutcomeLine
		if err := json.Unmarshal(l, &o); err != nil {
			t.Fatalf("outcome line: %v\n%s", err, l)
		}
	}
	var tr ExploreTrailer
	if err := json.Unmarshal(lines[len(lines)-1], &tr); err != nil {
		t.Fatal(err)
	}
	if !tr.Done || tr.Error != nil {
		t.Fatalf("trailer = %+v, want done with no error", tr)
	}
	if tr.Outcomes != len(outcomes) {
		t.Errorf("trailer counts %d outcomes, stream carried %d lines", tr.Outcomes, len(outcomes))
	}
	if tr.Stats == nil || tr.Stats.OrdersExplored != int64(tr.Runs) {
		t.Errorf("trailer stats = %+v, want orders_explored == runs %d", tr.Stats, tr.Runs)
	}
	m := metrics(t, ts.URL)
	if m.Explore == nil || m.Explore.Searches != 1 {
		t.Fatalf("metrics explore = %+v, want one search", m.Explore)
	}
	if m.Explore.OrdersExplored != int64(tr.Runs) {
		t.Errorf("metrics orders = %d, trailer runs = %d", m.Explore.OrdersExplored, tr.Runs)
	}
	// The Prometheus rendering carries the same counters.
	resp2, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var prom bytes.Buffer
	prom.ReadFrom(resp2.Body)
	if !bytes.Contains(prom.Bytes(), []byte("undefc_explore_searches_total 1")) {
		t.Errorf("prometheus output lacks explore counters:\n%s", prom.Bytes())
	}
}
