package server

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/obs"
)

// ErrQueueFull reports that the admission queue is at capacity: the
// request was rejected immediately instead of waiting, and the client
// should back off (the handler maps this to 429 + Retry-After).
var ErrQueueFull = errors.New("admission queue full")

// queue is the server's admission control: at most `concurrency` requests
// execute at once, at most `depth` more wait for a slot, and everything
// beyond that is rejected on arrival. Rejecting at the door instead of
// queueing without bound is what keeps tail latency finite under
// overload — a client is better served by an immediate 429 than by a
// reply that arrives after its own deadline.
type queue struct {
	tokens chan struct{}
	depth  int64

	waiting obs.Gauge // requests blocked in Acquire
	active  obs.Gauge // requests holding a token

	admitted  atomic.Int64
	rejected  atomic.Int64
	cancelled atomic.Int64
}

func newQueue(concurrency, depth int) *queue {
	q := &queue{tokens: make(chan struct{}, concurrency), depth: int64(depth)}
	for i := 0; i < concurrency; i++ {
		q.tokens <- struct{}{}
	}
	return q
}

// Acquire admits the request or refuses it. On success it returns a
// release function that MUST be called exactly once. It fails fast with
// ErrQueueFull when the wait line is at capacity, and with ctx.Err() when
// the caller's context ends while waiting.
func (q *queue) Acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot, no queueing at all.
	select {
	case <-q.tokens:
		q.admitted.Add(1)
		q.active.Inc()
		return q.release, nil
	default:
	}
	// Admission check is a gauge read, not a reservation, so a burst can
	// briefly overshoot depth by the number of racing arrivals — bounded
	// imprecision is fine for backpressure; what matters is that the wait
	// line cannot grow without bound.
	if q.waiting.Load() >= q.depth {
		q.rejected.Add(1)
		return nil, ErrQueueFull
	}
	q.waiting.Inc()
	defer q.waiting.Dec()
	select {
	case <-q.tokens:
		q.admitted.Add(1)
		q.active.Inc()
		return q.release, nil
	case <-ctx.Done():
		q.cancelled.Add(1)
		return nil, ctx.Err()
	}
}

func (q *queue) release() {
	q.active.Dec()
	q.tokens <- struct{}{}
}

// ResetHighWater rebases the waiting/active high-water marks to their
// current levels (see obs.Gauge.Reset); counters are untouched.
func (q *queue) ResetHighWater() {
	q.waiting.Reset()
	q.active.Reset()
}

// Stats snapshots the queue counters for /metrics.
func (q *queue) Stats() QueueStats {
	return QueueStats{
		Depth:     q.waiting.Load(),
		MaxDepth:  q.waiting.Max(),
		Active:    q.active.Load(),
		MaxActive: q.active.Max(),
		Admitted:  q.admitted.Load(),
		Rejected:  q.rejected.Load(),
		Cancelled: q.cancelled.Load(),
	}
}
