package server

// The Prometheus text exposition of /metrics. The JSON body stays the
// canonical format (the API's own consumers and undefbench read it); this
// renderer is a derived view of the same MetricsResponse so the two can
// never disagree. Everything is rendered in a fixed order — maps are
// sorted — so consecutive scrapes of an idle server are byte-identical.

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/obs"
)

// writePrometheus renders m in the Prometheus text exposition format
// (version 0.0.4), the content type Prometheus scrapers negotiate.
func writePrometheus(w http.ResponseWriter, m *MetricsResponse) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	promGauge(w, "undefc_uptime_seconds", "Seconds since the server started.", float64(m.UptimeNS)/1e9)

	fmt.Fprintf(w, "# HELP undefc_requests_total Requests received, by route.\n# TYPE undefc_requests_total counter\n")
	for _, k := range sortedKeys(m.Requests) {
		fmt.Fprintf(w, "undefc_requests_total{route=%q} %d\n", k, m.Requests[k])
	}
	fmt.Fprintf(w, "# HELP undefc_verdicts_total Analyze verdicts rendered, by verdict.\n# TYPE undefc_verdicts_total counter\n")
	for _, k := range sortedKeys(m.Verdicts) {
		fmt.Fprintf(w, "undefc_verdicts_total{verdict=%q} %d\n", k, m.Verdicts[k])
	}
	fmt.Fprintf(w, "# HELP undefc_batch_cells_total Streamed batch cells, by verdict.\n# TYPE undefc_batch_cells_total counter\n")
	for _, k := range sortedKeys(m.BatchCells) {
		fmt.Fprintf(w, "undefc_batch_cells_total{verdict=%q} %d\n", k, m.BatchCells[k])
	}
	promCounter(w, "undefc_panics_total", "Handler panics contained by the serve-stage guard.", m.Panics)

	promGauge(w, "undefc_queue_depth", "Requests waiting for admission.", float64(m.Queue.Depth))
	promGauge(w, "undefc_queue_depth_max", "High-water mark of the wait line.", float64(m.Queue.MaxDepth))
	promGauge(w, "undefc_queue_active", "Admitted requests currently executing.", float64(m.Queue.Active))
	promGauge(w, "undefc_queue_active_max", "High-water mark of executing requests.", float64(m.Queue.MaxActive))
	promCounter(w, "undefc_queue_admitted_total", "Requests admitted.", m.Queue.Admitted)
	promCounter(w, "undefc_queue_rejected_total", "Requests rejected at the door (429).", m.Queue.Rejected)
	promCounter(w, "undefc_queue_cancelled_total", "Waiters whose request ended before a slot freed.", m.Queue.Cancelled)

	promCounter(w, "undefc_coalesce_leaders_total", "Requests that ran an analysis.", m.Coalesce.Leaders)
	promCounter(w, "undefc_coalesce_followers_total", "Requests served by sharing a leader's flight.", m.Coalesce.Followers)

	promCounter(w, "undefc_cache_hits_total", "Compile-cache hits.", m.Cache.Hits)
	promCounter(w, "undefc_cache_misses_total", "Compile-cache misses (frontend passes).", m.Cache.Misses)
	promCounter(w, "undefc_cache_errors_total", "Frontend passes that failed.", m.Cache.Errors)
	promCounter(w, "undefc_cache_waits_total", "Single-flight waits on an in-flight compile.", m.Cache.Waits)
	promCounter(w, "undefc_cache_evictions_total", "Cache entries dropped.", m.Cache.Evictions)
	promCounter(w, "undefc_cache_artifact_hits_total", "Cache misses served by the artifact tier instead of a compile.", m.Cache.ArtifactHits)
	promCounter(w, "undefc_cache_compiles_total", "Cache misses that ran the frontend.", m.Cache.Compiles)

	if b := m.Bytecode; b != nil {
		promCounter(w, "undefc_bytecode_hits_total", "Compiled-code cache hits (vm engine).", int64(b.Hits))
		promCounter(w, "undefc_bytecode_misses_total", "Compiled-code cache misses (bytecode compiles).", int64(b.Misses))
		promCounter(w, "undefc_bytecode_evictions_total", "Compiled-code cache entries dropped.", int64(b.Evictions))
		promGauge(w, "undefc_bytecode_cached", "Programs with compiled code resident.", float64(b.Size))
	}

	if a := m.Artifact; a != nil {
		promCounter(w, "undefc_artifact_disk_hits_total", "Artifact loads served from the local store.", a.DiskHits)
		promCounter(w, "undefc_artifact_disk_misses_total", "Artifact loads the local store could not serve.", a.DiskMisses)
		promGauge(w, "undefc_artifact_disk_entries", "Frames resident in the local store.", float64(a.DiskEntries))
		promGauge(w, "undefc_artifact_disk_bytes", "Bytes resident in the local store.", float64(a.DiskBytes))
		promCounter(w, "undefc_artifact_stores_total", "Frames persisted to the local store.", a.Stores)
		promCounter(w, "undefc_artifact_store_errors_total", "Frame persists that failed.", a.StoreErrors)
		promCounter(w, "undefc_artifact_evictions_total", "Frames evicted by the size cap.", a.Evictions)
		promCounter(w, "undefc_artifact_peer_hits_total", "Artifact loads served by a peer fetch.", a.PeerHits)
		promCounter(w, "undefc_artifact_peer_misses_total", "Peer sweeps that found no artifact.", a.PeerMisses)
		promCounter(w, "undefc_artifact_peer_errors_total", "Failed peer-fetch attempts (dead peer, torn body, bad frame).", a.PeerErrors)
		promCounter(w, "undefc_artifact_bytes_fetched_total", "Frame bytes fetched from peers.", a.BytesFetched)
		promCounter(w, "undefc_artifact_corrupt_total", "Frames or payloads that failed validation anywhere.", a.Corrupt)
		promCounter(w, "undefc_artifact_encode_errors_total", "Programs that could not be serialized.", a.EncodeErrors)
		promCounter(w, "undefc_artifact_served_total", "Frames served to fetching peers.", a.Served)
		promCounter(w, "undefc_artifact_bytes_served_total", "Frame bytes served to fetching peers.", a.BytesServed)
	}

	if e := m.Explore; e != nil {
		promCounter(w, "undefc_explore_searches_total", "Evaluation-order searches completed.", e.Searches)
		promCounter(w, "undefc_explore_orders_total", "Evaluation orders executed across all searches.", e.OrdersExplored)
		promCounter(w, "undefc_explore_pruned_total", "Orders pruned as commuting (partial-order reduction).", e.OrdersPruned)
		promCounter(w, "undefc_explore_deduped_total", "Runs cut short at an already-explored machine state.", e.StatesDeduped)
	}

	for _, stage := range sortedKeys(m.Latency) {
		promHistogram(w, "undefc_latency_seconds", stage, m.Latency[stage])
	}

	if c := m.Coverage; c != nil {
		// The ledger rows are already code-sorted; render only behaviors
		// whose checks have been evaluated at least once, so an idle server
		// exposes no 221-series wall and consecutive scrapes stay stable.
		fmt.Fprintf(w, "# HELP undefc_ub_check_evaluated_total UB check evaluations, by behavior code.\n# TYPE undefc_ub_check_evaluated_total counter\n")
		for _, row := range c.Behaviors {
			if row.Evaluated != 0 {
				fmt.Fprintf(w, "undefc_ub_check_evaluated_total{code=%q,section=%q} %d\n", row.Key, row.Section, row.Evaluated)
			}
		}
		fmt.Fprintf(w, "# HELP undefc_ub_check_fired_total UB checks that fired (behavior detected), by behavior code.\n# TYPE undefc_ub_check_fired_total counter\n")
		for _, row := range c.Behaviors {
			if row.Fired != 0 {
				fmt.Fprintf(w, "undefc_ub_check_fired_total{code=%q,section=%q} %d\n", row.Key, row.Section, row.Fired)
			}
		}
		promGauge(w, "undefc_ub_check_registered_behaviors", "Behaviors with at least one registered check site.", float64(c.Registered))
		promGauge(w, "undefc_ub_check_dead_behaviors", "Registered behaviors whose checks have never fired here.", float64(c.Dead))
	}

	drain := 0.0
	if m.Draining {
		drain = 1
	}
	promGauge(w, "undefc_draining", "1 while the server is draining.", drain)
}

func promGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, promFloat(v))
}

func promCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// promHistogram renders one latency stage as a conventional Prometheus
// histogram: cumulative buckets in seconds, then sum and count. The
// underlying obs.Histogram buckets are per-bucket counts with log-spaced
// upper bounds; Prometheus wants running totals and a trailing +Inf.
func promHistogram(w io.Writer, name, stage string, s *obs.HistogramSnapshot) {
	fmt.Fprintf(w, "# HELP %s Server-side latency by stage.\n# TYPE %s histogram\n", name, name)
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if i == len(s.Buckets)-1 {
			fmt.Fprintf(w, "%s_bucket{stage=%q,le=\"+Inf\"} %d\n", name, stage, cum)
			break
		}
		// Render only occupied edges plus the final bucket of each run to
		// keep the output readable; Prometheus interpolates cumulatively,
		// so skipping empty leading buckets loses nothing.
		if n == 0 && cum == 0 {
			continue
		}
		le := float64(obs.HistogramBound(i)) / 1e9
		fmt.Fprintf(w, "%s_bucket{stage=%q,le=%q} %d\n", name, stage, promFloat(le), cum)
	}
	fmt.Fprintf(w, "%s_sum{stage=%q} %s\n", name, stage, promFloat(float64(s.SumNS)/1e9))
	fmt.Fprintf(w, "%s_count{stage=%q} %d\n", name, stage, s.Count)
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
