package server

// Tests for the observability surfaces: sampled request traces, the
// Prometheus exposition on /metrics, and the debug listener's
// metrics-window reset.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// normalizeTrace strips the nondeterminism out of a Chrome trace body so
// it can be pinned as a golden fixture: timestamps and durations go to
// zero, the (random) trace ID thread row becomes 1, and span IDs (global
// counters) are renumbered in first-seen order. Parent links resolve
// through the same renumbering, so the tree shape survives.
func normalizeTrace(t *testing.T, raw []byte) []byte {
	t.Helper()
	var tr obs.ChromeTrace
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace body is not Chrome trace JSON: %v\n%s", err, raw)
	}
	renum := map[string]string{"0": "0"}
	next := 1
	id := func(old string) string {
		if got, ok := renum[old]; ok {
			return got
		}
		n := strconv.Itoa(next)
		next++
		renum[old] = n
		return n
	}
	for i := range tr.TraceEvents {
		e := &tr.TraceEvents[i]
		e.TS, e.Dur, e.TID = 0, 0, 1
		e.Args["span"] = id(e.Args["span"])
		e.Args["parent"] = id(e.Args["parent"])
	}
	var out bytes.Buffer
	enc := json.NewEncoder(&out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&tr); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestTraceGolden pins the span tree of one traced /v1/analyze request:
// handle → queue → compile → interp, with the verdict, cache, and model
// attributes each stage contributes. The fixture request is the same
// CWE-457 shape the response golden uses.
func TestTraceGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceSample: 1})
	req := readFixture(t, "analyze_request.json")
	resp, body := postRaw(t, ts.URL, "/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.TraceID == "" {
		t.Fatal("sampled response carries no trace_id")
	}

	traceResp, err := http.Get(ts.URL + "/v1/trace/" + ar.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer traceResp.Body.Close()
	var raw bytes.Buffer
	raw.ReadFrom(traceResp.Body)
	if traceResp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/trace/%s = %d\n%s", ar.TraceID, traceResp.StatusCode, raw.Bytes())
	}
	golden(t, "trace_analyze.golden.json", normalizeTrace(t, raw.Bytes()))

	// Unknown IDs are 404s, malformed ones 400s — never panics or 500s.
	for _, tc := range []struct {
		id   string
		want int
	}{
		{"ffffffffffffffff", http.StatusNotFound},
		{"not-hex", http.StatusBadRequest},
		{"", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + "/v1/trace/" + tc.id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET /v1/trace/%q = %d, want %d", tc.id, resp.StatusCode, tc.want)
		}
	}
}

// TestTraceSampling checks the every-Nth contract: with TraceSample=2,
// alternate requests carry a trace_id and the others do not.
func TestTraceSampling(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceSample: 2})
	req := readFixture(t, "analyze_request.json")
	var traced, untraced int
	for i := 0; i < 4; i++ {
		_, body := postRaw(t, ts.URL, "/v1/analyze", req)
		var ar AnalyzeResponse
		if err := json.Unmarshal(body, &ar); err != nil {
			t.Fatal(err)
		}
		if ar.TraceID != "" {
			traced++
		} else {
			untraced++
		}
	}
	if traced != 2 || untraced != 2 {
		t.Errorf("TraceSample=2 over 4 requests: traced=%d untraced=%d, want 2/2", traced, untraced)
	}
}

func postRaw(t *testing.T, url, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// TestMetricsPrometheus checks the content negotiation on /metrics: JSON
// stays the default, Accept: text/plain (a Prometheus scraper) or
// ?format=prometheus switches to the text exposition, and an explicit
// application/json wins over a scraper-ish wildcard.
func TestMetricsPrometheus(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := readFixture(t, "analyze_request.json")
	postRaw(t, ts.URL, "/v1/analyze", req)

	get := func(accept, query string) (*http.Response, string) {
		t.Helper()
		r, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics"+query, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			r.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return resp, b.String()
	}

	// Default stays JSON — existing clients must not see a format change.
	resp, body := get("", "")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default Content-Type = %q, want application/json", ct)
	}
	var m MetricsResponse
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("default /metrics is not JSON: %v", err)
	}
	if m.Latency["e2e"] == nil || m.Latency["e2e"].Count != 1 {
		t.Errorf("latency[e2e] = %+v, want count 1", m.Latency["e2e"])
	}

	for _, tc := range []struct{ accept, query string }{
		{"text/plain", ""},
		{"application/openmetrics-text;version=1.0.0", ""},
		{"", "?format=prometheus"},
	} {
		resp, body := get(tc.accept, tc.query)
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("accept=%q query=%q: Content-Type = %q, want text/plain", tc.accept, tc.query, ct)
		}
		for _, want := range []string{
			"# TYPE undefc_requests_total counter",
			`undefc_requests_total{route="/v1/analyze"} 1`,
			`undefc_verdicts_total{verdict="flagged"} 1`,
			"undefc_latency_seconds_count{stage=\"e2e\"} 1",
			"undefc_latency_seconds_bucket{stage=\"e2e\",le=\"+Inf\"} 1",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("accept=%q query=%q: exposition missing %q\n%s", tc.accept, tc.query, want, body)
			}
		}
	}

	// An explicit JSON preference is honored even alongside text/plain.
	resp, body = get("application/json, text/plain", "")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Accept json+text: Content-Type = %q, want application/json", ct)
	}
	_ = body
}

// TestDebugReset exercises the debug surface: POST /debug/metrics/reset
// clears the latency window and rebases the queue high-water marks, GET
// is refused, and unknown debug routes 404.
func TestDebugReset(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	dbg := httptest.NewServer(srv.DebugHandler())
	defer dbg.Close()

	req := readFixture(t, "analyze_request.json")
	postRaw(t, ts.URL, "/v1/analyze", req)
	if m := metrics(t, ts.URL); m.Latency["e2e"] == nil || m.Latency["e2e"].Count != 1 {
		t.Fatalf("precondition: latency[e2e] = %+v, want count 1", m.Latency["e2e"])
	}

	resp, err := http.Post(dbg.URL+"/debug/metrics/reset", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /debug/metrics/reset = %d, want 200", resp.StatusCode)
	}
	if m := metrics(t, ts.URL); m.Latency != nil {
		t.Errorf("latency after reset = %+v, want empty window", m.Latency)
	}

	// Monotonic counters survive the reset — only the window rebases.
	if m := metrics(t, ts.URL); m.Requests["/v1/analyze"] != 1 {
		t.Errorf("requests[/v1/analyze] after reset = %d, want 1 (counters are not windowed)", m.Requests["/v1/analyze"])
	}

	getResp, err := http.Get(dbg.URL + "/debug/metrics/reset")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /debug/metrics/reset = %d, want 405", getResp.StatusCode)
	}

	nf, err := http.Get(dbg.URL + "/debug/nope")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Errorf("GET /debug/nope = %d, want 404", nf.StatusCode)
	}

	// The pprof index is mounted (the whole point of the second listener).
	pp, err := http.Get(dbg.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/ = %d, want 200", pp.StatusCode)
	}
}
