package server

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// outcome is the shared product of one analysis flight: either a response
// body or an API error, plus the HTTP status to serve it with. Followers
// copy the value, so an outcome must stay plain data (the embedded
// ToolResult pointers — UB, Fault, Metrics — are written once by the
// leader and only read after the flight's done channel closes).
type outcome struct {
	status int
	resp   AnalyzeResponse
	// errCode/errMsg, when set, mean the flight produced no analysis (the
	// leader was refused admission); the handler serves an ErrorResponse.
	errCode string
	errMsg  string
}

// coalescer single-flights identical in-flight analyze requests: the
// first request for a key (the leader) runs the analysis; requests that
// arrive with the same key while it is still running (followers) block on
// the leader's flight and share its outcome without consuming an
// admission slot or any interpreter work. This is pure in-flight
// deduplication, not a response cache — the moment a flight completes its
// key is forgotten, so results can never go stale. It layers on
// driver.Cache, which deduplicates the *compile*; the coalescer
// deduplicates the whole compile+run.
type coalescer struct {
	mu       sync.Mutex
	inflight map[string]*flight

	leaders   atomic.Int64
	followers atomic.Int64
}

type flight struct {
	done chan struct{} // closed once out is set
	out  outcome
}

func newCoalescer() *coalescer {
	return &coalescer{inflight: make(map[string]*flight)}
}

// do runs fn once per concurrent key: the leader executes it, followers
// wait and share. The boolean reports whether this caller was a follower.
func (c *coalescer) do(key string, fn func() outcome) (outcome, bool) {
	c.mu.Lock()
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.followers.Add(1)
		<-f.done
		return f.out, true
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()
	c.leaders.Add(1)

	// Yield between publishing the flight and executing it. A short
	// CPU-bound analysis has no scheduling point of its own, so on a
	// single-P runtime the leader would otherwise run to completion before
	// any already-arrived duplicate could reach the map — coalescing would
	// be structurally impossible exactly when the machine is most loaded.
	// One cooperative yield lets runnable duplicates register as followers
	// first; elsewhere it is noise.
	runtime.Gosched()

	f.out = fn()

	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
	return f.out, false
}

// Stats snapshots the coalescer counters for /metrics.
func (c *coalescer) Stats() CoalesceStats {
	l, fo := c.leaders.Load(), c.followers.Load()
	s := CoalesceStats{Leaders: l, Followers: fo}
	if l+fo > 0 {
		s.HitRate = float64(fo) / float64(l+fo)
	}
	return s
}
