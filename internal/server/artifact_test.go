package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/driver"
)

// TestArtifactEndpointAndRestartReuse drives the artifact tier through the
// HTTP surface: a warm shard serves its compiled frame on /v1/artifact/,
// and a second shard pointed at the first's address (the peer-fetch path)
// answers its first analyze without running its own frontend.
func TestArtifactEndpointAndRestartReuse(t *testing.T) {
	dir := t.TempDir()
	src := "int main(void) { int a = 1; return a - 1; }\n"
	_, tsA := newTestServer(t, Config{ArtifactDir: dir})

	resp, _ := post(t, tsA.URL, "/v1/analyze", map[string]any{"source": src, "file": "art.c"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d", resp.StatusCode)
	}
	key := driver.SourceKey(src, "art.c", driver.Options{})

	// The compiled frame must now be served raw on the peer endpoint.
	fresp, err := http.Get(tsA.URL + "/v1/artifact/" + key)
	if err != nil {
		t.Fatal(err)
	}
	frame, _ := io.ReadAll(fresp.Body)
	fresp.Body.Close()
	if fresp.StatusCode != http.StatusOK || len(frame) == 0 {
		t.Fatalf("artifact fetch: status %d, %d bytes", fresp.StatusCode, len(frame))
	}
	if got := fresp.Header.Get("Content-Type"); got != "application/octet-stream" {
		t.Errorf("content type = %q", got)
	}

	// Unknown key and traversal-shaped keys are clean 404s.
	for _, bad := range []string{strings.Repeat("0", 64), "../../etc/passwd", "zz"} {
		r, err := http.Get(tsA.URL + "/v1/artifact/" + bad)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("key %q: status %d, want 404", bad, r.StatusCode)
		}
	}

	// A restarted shard on the same directory serves the repeat request
	// from disk: artifact hit, zero frontend compiles beyond it.
	srvB, tsB := newTestServer(t, Config{ArtifactDir: dir})
	resp, _ = post(t, tsB.URL, "/v1/analyze", map[string]any{"source": src, "file": "art.c"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted analyze: status %d", resp.StatusCode)
	}
	st := srvB.CacheStats()
	if st.ArtifactHits != 1 || st.Compiles != 0 {
		t.Fatalf("restarted cache stats = %+v, want the miss served by the artifact tier", st)
	}
	m := srvB.Metrics()
	if m.Artifact == nil || m.Artifact.DiskHits != 1 {
		t.Fatalf("metrics artifact block = %+v, want 1 disk hit", m.Artifact)
	}

	// A cold shard with no shared disk but tsA as a peer fetches instead
	// of compiling — the cross-node path, steered by the router hint.
	srvC, tsC := newTestServer(t, Config{ArtifactDir: t.TempDir(), ArtifactPeers: []string{tsA.URL}})
	resp, _ = post(t, tsC.URL, "/v1/analyze", map[string]any{"source": src, "file": "art.c"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer analyze: status %d", resp.StatusCode)
	}
	if st := srvC.CacheStats(); st.ArtifactHits != 1 || st.Compiles != 0 {
		t.Fatalf("peer cache stats = %+v, want the miss served by a peer fetch", st)
	}
	if m := srvC.Metrics(); m.Artifact == nil || m.Artifact.PeerHits != 1 {
		t.Fatalf("peer metrics artifact block = %+v, want 1 peer hit", m.Artifact)
	}
}

// TestArtifactDisabled pins the no-tier behavior: the endpoint answers 404
// and /metrics carries no artifact block.
func TestArtifactDisabled(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	r, err := http.Get(ts.URL + "/v1/artifact/" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404 with no tier", r.StatusCode)
	}
	if m := srv.Metrics(); m.Artifact != nil {
		t.Fatal("metrics carry an artifact block with no tier configured")
	}
}

// TestArtifactPrometheusBlock checks the text exposition carries the new
// cache split and the artifact counters.
func TestArtifactPrometheusBlock(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{ArtifactDir: dir})
	post(t, ts.URL, "/v1/analyze", map[string]any{"source": "int main(void) { return 0; }", "file": "p.c"})

	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"undefc_cache_artifact_hits_total 0",
		"undefc_cache_compiles_total 1",
		"undefc_artifact_stores_total 1",
		"undefc_artifact_disk_entries 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}
