package server

// The debug surface: pprof profiling plus the metrics-window reset. It is
// a SEPARATE handler from the serving mux on purpose — profiling endpoints
// and state-mutating resets must never be reachable through the port a
// load balancer fronts. undefd mounts this on its -debug-addr listener
// (loopback by convention); without that flag the surface does not exist.

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the debug mux:
//
//	GET  /debug/pprof/...       the standard net/http/pprof surface
//	POST /debug/metrics/reset   start a fresh measurement window
//	                            (gauge high-water marks + latency
//	                            histograms; see Server.ResetHighWater)
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/metrics/reset", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "method-not-allowed",
				"/debug/metrics/reset only accepts POST")
			return
		}
		s.ResetHighWater()
		writeJSON(w, http.StatusOK, map[string]string{"status": "reset"})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "not-found", "no such debug route: "+r.URL.Path)
	})
	return mux
}
