package server

// The undefc.api/v1 wire types. Every request and response body on the
// service is one of these values, and each is plain data (no methods with
// side effects, every field a value type) so the whole API round-trips
// through encoding/json — the golden fixtures under testdata/ pin the
// shapes byte for byte. Result payloads embed the undefc.report/v1 types
// from internal/runner rather than redefining them: a verdict means the
// same thing whether it arrived in a file report or over the network.

import (
	"time"

	"repro/internal/artifact"
	"repro/internal/driver"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/search"
	"repro/internal/ub"
	"repro/internal/vm"
)

// APISchema identifies the service wire format. Consumers should reject
// bodies whose schema they do not understand; the version suffix is bumped
// on any incompatible change.
const APISchema = "undefc.api/v1"

// AnalyzeRequest is the body of POST /v1/analyze: one self-contained C
// translation unit plus the per-request knobs. Zero values defer to the
// server's configured defaults.
type AnalyzeRequest struct {
	// Source is the full C source text (required).
	Source string `json:"source"`
	// File names the translation unit in diagnostics (default "request.c").
	File string `json:"file,omitempty"`
	// Tool selects the analysis: "kcc" (default), "valgrind",
	// "checkpointer", or "value-analysis".
	Tool string `json:"tool,omitempty"`
	// Model is the implementation-defined model: "LP64" (default),
	// "ILP32", or "INT8".
	Model string `json:"model,omitempty"`
	// Defines are command-line style macro definitions ("NAME=VALUE").
	Defines []string `json:"defines,omitempty"`
	// MaxSteps bounds the execution step budget (0 = server default).
	MaxSteps int64 `json:"max_steps,omitempty"`
	// Timeout is the per-request wall-clock watchdog as a Go duration
	// string ("500ms"); it is clamped to the server's maximum.
	Timeout string `json:"timeout,omitempty"`
	// Metrics asks for the execution-metrics snapshot in the result.
	Metrics bool `json:"metrics,omitempty"`
}

// AnalyzeResponse is the body of a /v1/analyze reply. Result is the same
// shape as the undefc.report/v1 single-file result, so report consumers
// parse service replies unchanged.
type AnalyzeResponse struct {
	Schema string            `json:"schema"`
	File   string            `json:"file"`
	Result runner.ToolResult `json:"result"`
	// Coalesced marks a reply served by sharing another identical
	// in-flight request's analysis instead of running its own.
	Coalesced bool `json:"coalesced,omitempty"`
	// QueueNS is the time the request (or the leader it coalesced onto)
	// waited for admission.
	QueueNS int64 `json:"queue_ns,omitempty"`
	// TraceID is set when this request was sampled for tracing: its span
	// tree is retrievable from GET /v1/trace/{TraceID} as Chrome
	// trace-event JSON until the trace buffer evicts it.
	TraceID string `json:"trace_id,omitempty"`
}

// BatchCase is one case of a caller-supplied batch.
type BatchCase struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	// Bad marks a case expected to contain undefined behavior (carried
	// through to the trailer's aggregate, not used to judge the verdict).
	Bad   bool   `json:"bad,omitempty"`
	Class string `json:"class,omitempty"`
}

// BatchRequest is the body of POST /v1/batch: either a named built-in
// suite or an explicit case list, analyzed by the selected tools on the
// server's worker pool. Results stream back as NDJSON (one BatchCellLine
// per completed case×tool cell, in completion order) framed by a
// BatchHeader line and a BatchTrailer line.
type BatchRequest struct {
	// Suite names a built-in suite ("juliet" or "own"); mutually
	// exclusive with Cases.
	Suite string      `json:"suite,omitempty"`
	Cases []BatchCase `json:"cases,omitempty"`
	// Tools selects the analyses (default: kcc only). Same names as
	// AnalyzeRequest.Tool.
	Tools   []string `json:"tools,omitempty"`
	Model   string   `json:"model,omitempty"`
	Defines []string `json:"defines,omitempty"`
	// Parallelism is the worker count for the case×tool matrix, clamped
	// to the server's concurrency limit (0 = 1: a batch holds one
	// admission slot, extra parallelism is an explicit request).
	Parallelism int `json:"parallelism,omitempty"`
	// CaseTimeout is the per-cell watchdog as a Go duration string.
	CaseTimeout string `json:"case_timeout,omitempty"`
	// MaxSteps bounds each cell's step budget (0 = server default).
	MaxSteps int64 `json:"max_steps,omitempty"`
	// Metrics asks for per-cell execution-metrics snapshots.
	Metrics bool `json:"metrics,omitempty"`
}

// BatchHeader is the first NDJSON line of a /v1/batch stream.
type BatchHeader struct {
	Schema string   `json:"schema"`
	Suite  string   `json:"suite,omitempty"`
	Cases  int      `json:"cases"`
	Tools  []string `json:"tools"`
}

// BatchCellLine is one streamed result: the undefc.report/v1 tool result
// plus the case it belongs to, emitted the moment the cell completes.
type BatchCellLine struct {
	Case string `json:"case"`
	runner.ToolResult
}

// BatchTrailer is the final NDJSON line of a /v1/batch stream: the run's
// frontend accounting and crash manifest summary. Error is set when the
// run itself failed (contained panic, cancellation) after the header was
// already on the wire.
type BatchTrailer struct {
	Done     bool                `json:"done"`
	Frontend runner.FrontendJSON `json:"frontend"`
	Failures int                 `json:"failures"`
	Skipped  int                 `json:"skipped,omitempty"`
	Retried  int                 `json:"retried,omitempty"`
	// TraceID echoes the batch's forwarded trace identity, so a consumer of
	// the stream — including one that only saw an Error — can fetch the
	// assembled trace without having kept the request headers around.
	TraceID string    `json:"trace_id,omitempty"`
	Error   *APIError `json:"error,omitempty"`
}

// ExploreRequest is the body of POST /v1/explore: evaluation-order search
// (paper §2.5.2) over one translation unit.
//
// The response comes in one of two shapes, negotiated on the Accept
// header. The default is one buffered ExploreResponse JSON body. A client
// that accepts "application/x-ndjson" instead gets a stream framed like
// /v1/batch: one ExploreHeader line, one ExploreOutcomeLine per distinct
// behavior the moment it is discovered, and one ExploreTrailer line with
// the search accounting.
type ExploreRequest struct {
	Source string `json:"source"`
	File   string `json:"file,omitempty"`
	Model  string `json:"model,omitempty"`
	// MaxRuns caps the number of evaluation orders tried (0 = the
	// server's configured default, itself defaulting to 5000).
	MaxRuns int `json:"max_runs,omitempty"`
	// MaxSteps bounds each single execution (0 = server default).
	MaxSteps int64 `json:"max_steps,omitempty"`
	// StopAtFirstUB ends the search at the first undefined order.
	StopAtFirstUB bool `json:"stop_at_first_ub,omitempty"`
	// Parallelism is the search's worker count, clamped to the server's
	// concurrency limit (0 = 1: an exploration holds one admission slot,
	// extra parallelism is an explicit request — same rule as batch).
	Parallelism int `json:"parallelism,omitempty"`
	// POR switches partial-order reduction: "on" (default) prunes sibling
	// orders whose operand effects provably commute; "off" explores every
	// order reachable within the budget.
	POR string `json:"por,omitempty"`
	// Dedup switches explored-state deduplication ("off" by default: the
	// state digest is a heuristic identity, so sharing subtrees is an
	// accelerator clients opt into).
	Dedup string `json:"dedup,omitempty"`
	// Timeout bounds the whole search as a Go duration string.
	Timeout string `json:"timeout,omitempty"`
}

// ExploreHeader is the first NDJSON line of a streamed /v1/explore reply:
// the search shape after defaulting and clamping.
type ExploreHeader struct {
	Schema      string `json:"schema"`
	File        string `json:"file"`
	MaxRuns     int    `json:"max_runs"`
	Parallelism int    `json:"parallelism"`
	POR         bool   `json:"por"`
	Dedup       bool   `json:"dedup"`
}

// ExploreOutcomeLine is one streamed distinct behavior, emitted in
// discovery order. Runs is the number of orders explored when the
// behavior surfaced — a progress marker, not part of the outcome.
type ExploreOutcomeLine struct {
	ExploreOutcome
	Runs int64 `json:"runs"`
}

// ExploreTrailer is the final NDJSON line of a streamed /v1/explore
// reply. Outcomes repeats the number of outcome lines sent, so a client
// can verify it saw the whole stream; Error is set when the search
// failed after the header was already on the wire.
type ExploreTrailer struct {
	Done          bool          `json:"done"`
	Runs          int           `json:"runs"`
	Exhausted     bool          `json:"exhausted"`
	Deterministic bool          `json:"deterministic"`
	Outcomes      int           `json:"outcomes"`
	Stats         *search.Stats `json:"stats,omitempty"`
	// TraceID echoes the search's forwarded trace identity (see
	// BatchTrailer.TraceID).
	TraceID string    `json:"trace_id,omitempty"`
	Error   *APIError `json:"error,omitempty"`
}

// ExploreOutcome is one distinct observed behavior.
type ExploreOutcome struct {
	ExitCode int       `json:"exit_code"`
	Output   string    `json:"output,omitempty"`
	UB       *ub.Error `json:"ub,omitempty"`
	Error    string    `json:"error,omitempty"`
	// Trace is the evaluation-order decision prefix that produced this
	// behavior (replayable).
	Trace []int `json:"trace"`
}

// ExploreResponse is the body of a /v1/explore reply; ubexplore -json
// emits the identical shape, so the CLI and the service stay one format.
type ExploreResponse struct {
	Schema        string           `json:"schema"`
	File          string           `json:"file"`
	Runs          int              `json:"runs"`
	Exhausted     bool             `json:"exhausted"`
	Deterministic bool             `json:"deterministic"`
	Outcomes      []ExploreOutcome `json:"outcomes"`
	// Stats breaks the search down: orders explored, orders pruned by
	// partial-order reduction, states deduplicated, wall time.
	Stats *search.Stats `json:"stats,omitempty"`
}

// ExploreResponseFrom flattens a search result into the wire shape.
func ExploreResponseFrom(file string, res search.Result) *ExploreResponse {
	stats := res.Stats
	out := &ExploreResponse{
		Schema:        APISchema,
		File:          file,
		Runs:          res.Runs,
		Exhausted:     res.Exhausted,
		Deterministic: res.Deterministic(),
		Outcomes:      []ExploreOutcome{},
		Stats:         &stats,
	}
	for _, o := range res.Outcomes {
		out.Outcomes = append(out.Outcomes, ExploreOutcomeFrom(o))
	}
	return out
}

// ExploreOutcomeFrom flattens one outcome into the wire shape (shared by
// the buffered response and the streamed outcome lines).
func ExploreOutcomeFrom(o search.Outcome) ExploreOutcome {
	eo := ExploreOutcome{ExitCode: o.ExitCode, Output: o.Output, UB: o.UB, Trace: o.Trace}
	if eo.Trace == nil {
		eo.Trace = []int{}
	}
	if o.Err != nil {
		eo.Error = o.Err.Error()
	}
	return eo
}

// APIError is the machine-readable error detail of an ErrorResponse.
type APIError struct {
	// Code is a stable identifier: "bad-request", "too-large",
	// "queue-full", "draining", "not-found", "method-not-allowed",
	// "internal-error".
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Schema string   `json:"schema"`
	Error  APIError `json:"error"`
}

// SpansResponse is the body of GET /v1/spans/{trace}: one process's
// retained spans for a trace, labeled with the process identity so an
// assembler can tell shard incarnations apart.
type SpansResponse struct {
	Schema   string         `json:"schema"`
	TraceID  string         `json:"trace_id"`
	ShardID  string         `json:"shard_id,omitempty"`
	Instance string         `json:"instance"`
	Spans    []obs.SpanJSON `json:"spans"`
}

// QueueStats is the admission queue's /metrics view.
type QueueStats struct {
	// Depth is the current number of requests waiting for admission;
	// MaxDepth is its high-water mark.
	Depth    int64 `json:"depth"`
	MaxDepth int64 `json:"max_depth"`
	// Active is the number of admitted requests currently executing;
	// MaxActive is its high-water mark.
	Active    int64 `json:"active"`
	MaxActive int64 `json:"max_active"`
	// Admitted counts requests that got a slot; Rejected counts 429s
	// (queue at capacity); Cancelled counts waiters whose request context
	// ended before a slot freed up.
	Admitted  int64 `json:"admitted"`
	Rejected  int64 `json:"rejected"`
	Cancelled int64 `json:"cancelled"`
}

// CoalesceStats is the request coalescer's /metrics view.
type CoalesceStats struct {
	// Leaders counts requests that ran an analysis; Followers counts
	// requests served by sharing a leader's in-flight analysis.
	Leaders   int64 `json:"leaders"`
	Followers int64 `json:"followers"`
	// HitRate is Followers / (Leaders + Followers), the fraction of
	// requests that paid nothing.
	HitRate float64 `json:"hit_rate"`
}

// MetricsResponse is the body of GET /metrics.
type MetricsResponse struct {
	Schema   string `json:"schema"`
	UptimeNS int64  `json:"uptime_ns"`
	// Instance is this process incarnation's boot identity (random per
	// start). A cluster router reconciles its delivered-by-instance
	// counts against shard metrics through this field: if it changes
	// between two readings, the counters restarted from zero.
	Instance string `json:"instance,omitempty"`
	// ShardID is the operator-assigned shard name, set when the server
	// runs as a cluster shard.
	ShardID string `json:"shard_id,omitempty"`
	// Warm reports whether the compile cache has completed at least one
	// compile (the /readyz cold gate).
	Warm bool `json:"warm,omitempty"`
	// ServiceEWMANS is the smoothed per-request service time feeding the
	// adaptive Retry-After calculation.
	ServiceEWMANS int64 `json:"service_ewma_ns,omitempty"`
	// Requests counts received requests by route ("/v1/analyze", ...).
	Requests map[string]int64 `json:"requests"`
	// Verdicts counts /v1/analyze results by verdict string; BatchCells
	// does the same for streamed batch cells.
	Verdicts   map[string]int64 `json:"verdicts,omitempty"`
	BatchCells map[string]int64 `json:"batch_cells,omitempty"`
	// Panics counts handler panics contained by the serve-stage guard.
	Panics   int64             `json:"panics,omitempty"`
	Queue    QueueStats        `json:"queue"`
	Coalesce CoalesceStats     `json:"coalesce"`
	Cache    driver.CacheStats `json:"cache"`
	// Bytecode is the compiled-code cache of the "vm" engine, present only
	// when the server runs with Config.Engine "vm".
	Bytecode *vm.CacheStats `json:"bytecode,omitempty"`
	// Artifact is the content-addressed artifact tier under the compile
	// cache, present only when the server runs with Config.ArtifactDir.
	Artifact *artifact.Stats `json:"artifact,omitempty"`
	// Latency holds the server-side latency distributions of the analyze
	// path, keyed "e2e", "queue", "compile", "run" — each with count, sum,
	// min/max and precomputed p50/p95/p99. Present once the server has
	// handled at least one analyze request. Deltas between two readings
	// (HistogramSnapshot.Sub) give windowed quantiles; undefbench uses
	// exactly that to compare server-side against client-observed latency.
	Latency  map[string]*obs.HistogramSnapshot `json:"latency,omitempty"`
	// Coverage is the process-lifetime UB check-site coverage ledger (also
	// served alone on GET /v1/coverage); a cluster router sums shard
	// ledgers into its aggregate through this field.
	Coverage *obs.CoverageLedger `json:"coverage,omitempty"`
	Draining bool                `json:"draining,omitempty"`
	// Explore aggregates /v1/explore work, present once the server has
	// run at least one search.
	Explore *ExploreMetrics `json:"explore,omitempty"`
}

// ExploreMetrics is the /metrics view of the evaluation-order search.
type ExploreMetrics struct {
	// Searches counts completed /v1/explore requests (both response
	// forms); the remaining counters sum over those searches.
	Searches       int64 `json:"searches"`
	OrdersExplored int64 `json:"orders_explored"`
	OrdersPruned   int64 `json:"orders_pruned"`
	StatesDeduped  int64 `json:"states_deduped"`
}

// ConfigResponse is the body of GET /debug/config: the effective serving
// configuration after defaulting.
type ConfigResponse struct {
	Schema         string   `json:"schema"`
	Model          string   `json:"model"`
	ShardID        string   `json:"shard_id,omitempty"`
	Defines        []string `json:"defines,omitempty"`
	Engine         string   `json:"engine,omitempty"`
	Concurrency    int      `json:"concurrency"`
	QueueDepth     int      `json:"queue_depth"`
	DefaultTimeout string   `json:"default_timeout"`
	MaxTimeout     string   `json:"max_timeout"`
	MaxSourceBytes int64    `json:"max_source_bytes"`
	MaxBatchCases  int      `json:"max_batch_cases"`
	MaxExploreRuns int      `json:"max_explore_runs"`
	InjectorArmed  bool     `json:"injector_armed,omitempty"`
	// TraceSample is the 1-in-N analyze-tracing rate (0 = tracing off);
	// FlightEvents is the armed flight-recorder ring size (0 = off).
	TraceSample  int `json:"trace_sample,omitempty"`
	FlightEvents int `json:"flight_events,omitempty"`
	// ArtifactDir and ArtifactPeers describe the artifact tier (empty =
	// tier disabled).
	ArtifactDir   string   `json:"artifact_dir,omitempty"`
	ArtifactPeers []string `json:"artifact_peers,omitempty"`
}

// parseTimeout resolves a request's timeout string against the server's
// default and ceiling: empty means the default, anything above the
// ceiling is clamped to it.
func parseTimeout(s string, def, max time.Duration) (time.Duration, error) {
	if s == "" {
		return def, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d <= 0 || d > max {
		return max, nil
	}
	return d, nil
}
