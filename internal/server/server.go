// Package server turns the undefinedness checker into a long-lived
// analysis service: a versioned undefc.api/v1 HTTP API over the same
// pipeline the CLIs drive (driver → tools → runner → search), wrapped in
// the serving discipline a production checker needs — bounded admission
// with backpressure (a full queue answers 429 + Retry-After immediately
// instead of queueing without bound), single-flight coalescing of
// identical in-flight submissions keyed on the compile cache's source
// hash (N clients submitting the same translation unit cost one
// compile+run), per-request deadlines, panic quarantine at the serve
// stage (a crashing request returns a structured internal-error verdict;
// the daemon keeps serving), and graceful drain for SIGTERM.
//
// Routes:
//
//	POST /v1/analyze   one source → one undefc.report/v1 tool result
//	POST /v1/batch     case set → NDJSON stream of per-cell results
//	POST /v1/explore   evaluation-order search (§2.5.2)
//	GET  /v1/trace/    sampled whole-request trace, Chrome trace JSON
//	GET  /v1/spans/    this process's retained spans for one trace ID
//	GET  /v1/coverage  the UB check-site coverage ledger
//	GET  /healthz      liveness ("ok", or 503 "draining")
//	GET  /metrics      queue/coalesce/cache/verdict counters, JSON
//	GET  /debug/config effective serving configuration
package server

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/ctypes"
	"repro/internal/driver"
	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/tools"
	"repro/internal/vm"
)

// SiteHandle is the fault-injection site fired at the top of every
// admitted request's analysis; the unit is the request's file name.
var SiteHandle = fault.RegisterSite("server.handle")

// Config tunes the service. Zero values take the documented defaults.
type Config struct {
	// Model is the default implementation-defined model ("LP64", "ILP32",
	// "INT8"); requests may override it.
	Model string
	// ShardID, when set, names this instance's place in a cluster: every
	// response carries it as X-Undefc-Shard, so clients and audits can
	// attribute answers to ring members.
	ShardID string
	// Defines are macro definitions applied to every compile, before any
	// per-request defines.
	Defines []string
	// Engine selects the execution engine for every analysis ("" or
	// "tree": the reference tree walker; "vm": pre-compiled closure code).
	// The engines are verdict- and event-equivalent; "vm" amortizes one
	// bytecode compile per translation unit across the requests the
	// compile cache coalesces onto it.
	Engine string
	// Concurrency bounds simultaneously executing analyses (default:
	// GOMAXPROCS).
	Concurrency int
	// QueueDepth bounds requests waiting for admission; arrivals beyond
	// it are answered 429 immediately (default 64).
	QueueDepth int
	// DefaultTimeout is the per-request watchdog when the request names
	// none (default 5s); MaxTimeout is the ceiling any request can ask
	// for (default 30s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxSourceBytes bounds an analyze/explore request body; batch bodies
	// get 16× (default 1 MiB).
	MaxSourceBytes int64
	// MaxBatchCases bounds a caller-supplied batch (default 4096).
	MaxBatchCases int
	// MaxExploreRuns is the default evaluation-order budget of a
	// /v1/explore search when the request names none (default 5000).
	MaxExploreRuns int
	// MaxSteps is the default execution step budget (0 = the pipeline's
	// interp.DefaultBudget).
	MaxSteps int64
	// Injector, when set, arms fault injection: the server.handle site
	// fires per admitted analysis and the injector is threaded into the
	// frontend and the tools (their own sites).
	Injector *fault.Injector
	// TraceSample enables request tracing: every Nth /v1/analyze request
	// is traced end to end (handle → queue → compile → interp) and its
	// span tree is retrievable as Chrome trace-event JSON from
	// GET /v1/trace/{id}. 0 disables tracing; 1 traces everything.
	TraceSample int
	// TraceBufferSize bounds the completed traces retained for /v1/trace
	// (default 128, oldest evicted first).
	TraceBufferSize int
	// Flight is the per-analysis flight-recorder ring size: when a request
	// is quarantined, times out, or is cancelled, its result carries the
	// last Flight abstract-machine events. 0 means "auto": armed at
	// obs.DefaultFlightEvents when an Injector is set (a chaos run without
	// post-mortems is wasted), off otherwise. Negative disables explicitly.
	Flight int
	// ArtifactDir, when set, arms the content-addressed artifact tier
	// under the compile cache: compiled programs are persisted there as
	// checksummed frames keyed by driver.SourceKey, the directory
	// survives restarts, and GET /v1/artifact/{key} serves frames to
	// peer shards.
	ArtifactDir string
	// ArtifactMaxBytes caps the artifact store (default 256 MiB; < 0
	// uncapped).
	ArtifactMaxBytes int64
	// ArtifactPeers are sibling shard addresses to fetch missing
	// artifacts from before falling back to a local compile.
	ArtifactPeers []string
	// ArtifactFetchTimeout bounds each peer-fetch attempt (default 750ms).
	ArtifactFetchTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Model == "" {
		c.Model = "LP64"
	}
	if c.Concurrency <= 0 {
		c.Concurrency = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.DefaultTimeout > c.MaxTimeout {
		c.DefaultTimeout = c.MaxTimeout
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.MaxBatchCases <= 0 {
		c.MaxBatchCases = 4096
	}
	if c.MaxExploreRuns <= 0 {
		c.MaxExploreRuns = 5000
	}
	if c.TraceBufferSize <= 0 {
		c.TraceBufferSize = 128
	}
	if c.Flight == 0 && c.Injector != nil {
		c.Flight = obs.DefaultFlightEvents
	}
	if c.Flight < 0 {
		c.Flight = 0
	}
	if c.ArtifactMaxBytes == 0 {
		c.ArtifactMaxBytes = 256 << 20
	}
	return c
}

// Server is one service instance: a compile cache, an admission queue,
// a request coalescer, and the counters behind /metrics. It is inert
// until its Handler is mounted on a listener.
type Server struct {
	cfg      Config
	model    *ctypes.Model
	cache    *driver.Cache
	queue    *queue
	coalesce *coalescer
	mux      *http.ServeMux
	start    time.Time
	draining atomic.Bool

	// instance is this process's boot identity (random per Server): a
	// cluster router watches it to detect restarts, because a restart
	// resets every counter below.
	instance string
	// warmed flips once the compile cache has produced its first program:
	// /readyz answers 503 "cold" until then, so a router never hashes
	// traffic onto a shard that would pay a cold-cache penalty spike.
	warmed atomic.Bool
	// ewmaServiceNS tracks recent analyze service time (α=1/8); the
	// adaptive Retry-After derives from it and the queue backlog.
	ewmaServiceNS atomic.Int64

	// traces retains sampled span trees for /v1/trace/{id}; nil when
	// tracing is off. sampleCtr drives the 1-in-TraceSample decision.
	traces    *obs.TraceBuffer
	sampleCtr atomic.Uint64
	// spans is the always-on bounded span ring behind GET /v1/spans/{trace}:
	// whenever a request carries a trace identity (forwarded by a router or
	// sampled here), its completed spans are teed into the ring, so a
	// router can stitch this shard's contribution into a cross-node trace
	// even when the shard itself samples nothing.
	spans *obs.SpanRing

	// Server-side latency distributions (lock-free histograms, exposed on
	// /metrics as latency{e2e,queue,compile,run} with p50/p95/p99).
	latE2E     obs.Histogram // whole /v1/analyze handler
	latQueue   obs.Histogram // admission wait
	latCompile obs.Histogram // frontend wait (cache hits are ~0)
	latRun     obs.Histogram // tool's own analysis

	// artifacts is the content-addressed artifact tier under the compile
	// cache; nil unless Config.ArtifactDir is set.
	artifacts *artifact.Tier

	mu         sync.Mutex
	requests   map[string]int64
	verdicts   map[string]int64
	batchCells map[string]int64
	panics     int64
	explore    ExploreMetrics
}

// New builds a Server from cfg (zero fields defaulted). It fails only on
// an unknown default model.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	model, err := ModelFor(cfg.Model)
	if err != nil {
		return nil, err
	}
	if err := validEngine(cfg.Engine); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		model:      model,
		cache:      driver.NewCache(),
		queue:      newQueue(cfg.Concurrency, cfg.QueueDepth),
		coalesce:   newCoalescer(),
		start:      time.Now(),
		instance:   newInstanceID(),
		requests:   make(map[string]int64),
		verdicts:   make(map[string]int64),
		batchCells: make(map[string]int64),
	}
	if cfg.TraceSample > 0 {
		s.traces = obs.NewTraceBuffer(cfg.TraceBufferSize)
	}
	s.spans = obs.NewSpanRing(0, 0)
	if cfg.Engine == "vm" {
		// Keep the compiled-code cache coherent with the compile cache: an
		// invalidated program's bytecode goes with it.
		s.cache.SetEvictHook(vm.Forget)
	}
	if cfg.ArtifactDir != "" {
		tier, err := artifact.NewTier(artifact.Config{
			Dir:          cfg.ArtifactDir,
			MaxBytes:     cfg.ArtifactMaxBytes,
			Peers:        cfg.ArtifactPeers,
			FetchTimeout: cfg.ArtifactFetchTimeout,
		})
		if err != nil {
			return nil, fmt.Errorf("artifact tier: %w", err)
		}
		s.artifacts = tier
		s.cache.SetArtifacts(tier)
	}
	s.mux = http.NewServeMux()
	s.route("/v1/analyze", http.MethodPost, s.handleAnalyze)
	s.route("/v1/batch", http.MethodPost, s.handleBatch)
	s.route("/v1/explore", http.MethodPost, s.handleExplore)
	s.route("/v1/trace/", http.MethodGet, s.handleTrace)
	s.route("/v1/spans/", http.MethodGet, s.handleSpans)
	s.route("/v1/coverage", http.MethodGet, s.handleCoverage)
	s.route("/healthz", http.MethodGet, s.handleHealthz)
	s.route("/readyz", http.MethodGet, s.handleReadyz)
	s.route("/metrics", http.MethodGet, s.handleMetrics)
	s.route("/debug/config", http.MethodGet, s.handleConfig)
	s.route("/v1/artifact/", http.MethodGet, s.handleArtifact)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "not-found", "no such route: "+r.URL.Path)
	})
	return s, nil
}

// Handler returns the service's HTTP handler (mount it on any server).
func (s *Server) Handler() http.Handler { return s.mux }

// SetDraining flips the drain flag: /healthz starts answering 503 so load
// balancers stop routing here, while in-flight and already-accepted
// requests complete normally (http.Server.Shutdown handles the
// connection-level drain).
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// CacheStats exposes the shared compile cache's counters.
func (s *Server) CacheStats() driver.CacheStats { return s.cache.Stats() }

// Instance returns this process's boot identity (the X-Undefc-Instance
// header value).
func (s *Server) Instance() string { return s.instance }

// Warmup runs one compile of a trivial translation unit through the
// shared cache, flipping /readyz from "cold" to ready. Daemons call it
// between binding the listener and announcing readiness, so a cluster
// router only ever routes to shards whose pipeline has proven itself
// end to end at least once.
func (s *Server) Warmup(ctx context.Context) error {
	copts := driver.Options{Model: s.model, Defines: s.cfg.Defines}
	_, err := s.cache.CompileCtx(ctx, "int main(void) { return 0; }", "warmup.c", copts)
	if err != nil {
		return err
	}
	s.warmed.Store(true)
	return nil
}

// newInstanceID draws a random 64-bit boot identity.
func newInstanceID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// The fallback only needs per-restart uniqueness on one host.
		return fmt.Sprintf("%016x", uint64(time.Now().UnixNano()))
	}
	return hex.EncodeToString(b[:])
}

// route registers a method-checked, request-counted handler. Every
// response carries the process's instance identity (and shard name when
// configured), so a router can attribute answers and detect restarts.
func (s *Server) route(path, method string, h http.HandlerFunc) {
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.requests[path]++
		s.mu.Unlock()
		w.Header().Set("X-Undefc-Instance", s.instance)
		if s.cfg.ShardID != "" {
			w.Header().Set("X-Undefc-Shard", s.cfg.ShardID)
		}
		// Echo a forwarded trace identity on every response — including
		// refusals (429/503) and method errors — so a client can always ask
		// the cluster for the trace of the request that was turned away.
		if tid := r.Header.Get("X-Undefc-Trace-Id"); tid != "" {
			w.Header().Set("X-Undefc-Trace-Id", tid)
		}
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed, "method-not-allowed",
				fmt.Sprintf("%s only accepts %s", path, method))
			return
		}
		h(w, r)
	})
}

func (s *Server) countVerdict(kind, verdict string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if kind == "batch" {
		s.batchCells[verdict]++
	} else {
		s.verdicts[verdict]++
	}
}

func (s *Server) countPanic() {
	s.mu.Lock()
	s.panics++
	s.mu.Unlock()
}

// countExplore folds one finished search into the /metrics aggregates.
func (s *Server) countExplore(st search.Stats) {
	s.mu.Lock()
	s.explore.Searches++
	s.explore.OrdersExplored += st.OrdersExplored
	s.explore.OrdersPruned += st.OrdersPruned
	s.explore.StatesDeduped += st.StatesDeduped
	s.mu.Unlock()
}

// Metrics assembles the /metrics snapshot.
func (s *Server) Metrics() *MetricsResponse {
	m := &MetricsResponse{
		Schema:        APISchema,
		UptimeNS:      time.Since(s.start).Nanoseconds(),
		Instance:      s.instance,
		ShardID:       s.cfg.ShardID,
		Warm:          s.warmed.Load(),
		ServiceEWMANS: s.ewmaServiceNS.Load(),
		Queue:         s.queue.Stats(),
		Coalesce:      s.coalesce.Stats(),
		Cache:         s.cache.Stats(),
		Draining:      s.draining.Load(),
	}
	if s.cfg.Engine == "vm" {
		st := vm.Stats()
		m.Bytecode = &st
	}
	if s.artifacts != nil {
		st := s.artifacts.Stats()
		m.Artifact = &st
	}
	if led := obs.CoverageSnapshot(); led.Registered > 0 {
		m.Coverage = led
	}
	if e2e := s.latE2E.Snapshot(); e2e.Count > 0 {
		m.Latency = map[string]*obs.HistogramSnapshot{
			"e2e":     e2e,
			"queue":   s.latQueue.Snapshot(),
			"compile": s.latCompile.Snapshot(),
			"run":     s.latRun.Snapshot(),
		}
	}
	s.mu.Lock()
	m.Requests = copyMap(s.requests)
	m.Verdicts = copyMap(s.verdicts)
	m.BatchCells = copyMap(s.batchCells)
	m.Panics = s.panics
	if s.explore.Searches > 0 {
		ex := s.explore
		m.Explore = &ex
	}
	s.mu.Unlock()
	return m
}

// ResetHighWater starts a fresh measurement window: the admission gauges'
// high-water marks rebase to their current levels and the latency
// histograms clear. Monotonic counters (requests, verdicts, cache) are
// left alone — windowed readings of those are a subtraction the client
// can do, but a high-water mark can only be rebased at the source.
// Exposed as POST /debug/metrics/reset on the debug listener only, never
// on the serving mux.
func (s *Server) ResetHighWater() {
	s.queue.ResetHighWater()
	s.latE2E.Reset()
	s.latQueue.Reset()
	s.latCompile.Reset()
	s.latRun.Reset()
}

func copyMap(src map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

// observeService folds one completed analyze round-trip into the
// service-time EWMA behind the adaptive Retry-After (racy lost updates
// are fine for a pacing signal).
func (s *Server) observeService(d time.Duration) {
	old := s.ewmaServiceNS.Load()
	s.ewmaServiceNS.Store(old + (d.Nanoseconds()-old)/8)
}

// retryAfterSeconds derives the backpressure pacing hint from live
// signals instead of a constant: the expected time to clear the current
// backlog — (waiting + active + 1) requests at the recent EWMA service
// time across Concurrency executors — clamped to [1, 60]. A router (or
// any well-behaved client) backing off by this amount arrives roughly
// when a slot is actually free, instead of either hammering a deep queue
// every second or idling in front of an empty one.
func (s *Server) retryAfterSeconds() int {
	ewma := s.ewmaServiceNS.Load()
	if ewma <= 0 {
		return 1
	}
	backlog := s.queue.waiting.Load() + s.queue.active.Load() + 1
	secs := int(math.Ceil(float64(backlog) * float64(ewma) / float64(s.cfg.Concurrency) / 1e9))
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

// setRetryAfter stamps the adaptive pacing hint on a backpressure reply.
func (s *Server) setRetryAfter(h http.Header) {
	h.Set("Retry-After", fmt.Sprint(s.retryAfterSeconds()))
}

// ModelFor resolves the implementation-defined model names the CLIs use.
// Exported for the cluster router, which must compute the same
// source-identity hash the shards' compile caches key on.
func ModelFor(name string) (*ctypes.Model, error) {
	switch strings.ToUpper(name) {
	case "", "LP64":
		return ctypes.LP64(), nil
	case "ILP32":
		return ctypes.ILP32(), nil
	case "INT8":
		return ctypes.Int8(), nil
	}
	return nil, fmt.Errorf("unknown model %q (want LP64, ILP32, or INT8)", name)
}

// validEngine checks a configured engine name against the registry, so a
// daemon started with a typo'd -engine fails at startup, not per request.
func validEngine(name string) error {
	if name == "" {
		return nil
	}
	for _, e := range interp.Engines() {
		if e == name {
			return nil
		}
	}
	return fmt.Errorf("unknown engine %q (want one of %v)", name, interp.Engines())
}

// toolFor resolves a request's tool name to a configured analysis tool.
func toolFor(name string, cfg tools.Config) (tools.Tool, error) {
	switch strings.ToLower(name) {
	case "", "kcc":
		return tools.KCC(cfg), nil
	case "valgrind", "memcheck":
		return tools.Memcheck(cfg), nil
	case "checkpointer":
		return tools.CheckPointer(cfg), nil
	case "value-analysis", "va":
		return tools.ValueAnalysis(cfg), nil
	}
	return nil, fmt.Errorf("unknown tool %q (want kcc, valgrind, checkpointer, or value-analysis)", name)
}

// budgetFor merges a request's step knob with the server default.
func (s *Server) budgetFor(maxSteps int64) interp.Budget {
	if maxSteps <= 0 {
		maxSteps = s.cfg.MaxSteps
	}
	return interp.Budget{MaxSteps: maxSteps}
}
