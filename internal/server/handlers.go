package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/driver"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/search"
	"repro/internal/sema"
	"repro/internal/suite"
	"repro/internal/tools"
)

// ---------- /v1/analyze ----------

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	// The e2e window opens before the request is even decoded and closes
	// after the response bytes are written: it must cover everything a
	// client's own stopwatch covers short of the network, or the
	// server-side histogram undercounts exactly the overhead it exists
	// to surface.
	start := time.Now()
	var req AnalyzeRequest
	if !decodeJSON(w, r, s.cfg.MaxSourceBytes, &req) {
		return
	}
	if req.Source == "" {
		writeError(w, http.StatusBadRequest, "bad-request", "source is required")
		return
	}
	file := req.File
	if file == "" {
		file = "request.c"
	}
	model := s.model
	if req.Model != "" {
		var err error
		if model, err = ModelFor(req.Model); err != nil {
			writeError(w, http.StatusBadRequest, "bad-request", err.Error())
			return
		}
	}
	timeout, err := parseTimeout(req.Timeout, s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", "timeout: "+err.Error())
		return
	}
	tcfg := tools.Config{
		Model:    model,
		Engine:   s.cfg.Engine,
		Budget:   s.budgetFor(req.MaxSteps),
		Metrics:  req.Metrics,
		Timeout:  timeout,
		Injector: s.cfg.Injector,
		Flight:   s.cfg.Flight,
	}
	tool, err := toolFor(req.Tool, tcfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", err.Error())
		return
	}
	defines := append(append([]string{}, s.cfg.Defines...), req.Defines...)
	copts := driver.Options{
		Model: model, Defines: defines, Injector: s.cfg.Injector,
		// The router's directory hint: the shard most likely to already
		// hold this key's compiled artifact. Not part of the cache key.
		ArtifactPeer: r.Header.Get("X-Undefc-Artifact-Peer"),
	}

	// Tracing: every cfg.TraceSample-th analyze request gets a trace
	// context; its span tree lands in s.traces when the root ends and is
	// served by GET /v1/trace/{id}. A request arriving from a cluster
	// router may carry X-Undefc-Trace-Id — a trace the router already
	// sampled — in which case this hop adopts that identity instead of
	// minting one, so the spans recorded here are retrievable under the
	// ID the client was told, whichever shard a failover landed on.
	ctx, traceID := s.adoptTrace(w, r, true)
	ctx, hsp := obs.StartSpan(ctx, "handle")

	// The coalesce key is the compile cache's source identity plus every
	// knob that changes the analysis: two requests with equal keys would
	// produce identical results, so the second shares the first's flight.
	key := fmt.Sprintf("%s|%s|%d|%s|%v",
		driver.SourceKey(req.Source, file, copts), tool.Name(), req.MaxSteps, timeout, req.Metrics)
	out, coalesced := s.coalesce.do(key, func() outcome {
		return s.runAnalysis(ctx, req.Source, file, tool, copts)
	})
	if hsp.Recording() {
		hsp.SetAttr("tool", tool.Name())
		hsp.SetAttr("model", s.cfg.Model)
		hsp.SetAttr("coalesced", fmt.Sprintf("%v", coalesced))
		if out.errCode != "" {
			hsp.SetAttr("error", out.errCode)
		} else {
			hsp.SetAttr("verdict", out.resp.Result.Verdict.String())
		}
		hsp.End()
	}
	if out.errCode != "" {
		if out.status == http.StatusTooManyRequests || out.status == http.StatusServiceUnavailable {
			s.setRetryAfter(w.Header())
		}
		writeError(w, out.status, out.errCode, out.errMsg)
		s.latE2E.Observe(time.Since(start))
		return
	}
	resp := out.resp
	resp.Coalesced = coalesced
	if traceID != 0 {
		resp.TraceID = obs.FormatTraceID(traceID)
	}
	s.countVerdict("analyze", resp.Result.Verdict.String())
	writeJSON(w, out.status, resp)
	e2e := time.Since(start)
	s.latE2E.Observe(e2e)
	s.observeService(e2e)
}

// adoptTrace resolves a request's trace identity and installs the span
// collector on its context. A forwarded X-Undefc-Trace-Id is adopted
// unconditionally — the spans land in the always-on ring, so a shard
// contributes to a router-assembled trace even with sampling off; sample
// additionally mints a fresh identity for every cfg.TraceSample-th request
// when local sampling is on. Whenever the request ends up traced, the
// response carries the ID back in the same header.
func (s *Server) adoptTrace(w http.ResponseWriter, r *http.Request, sample bool) (context.Context, uint64) {
	ctx := r.Context()
	// s.traces is a typed pointer: box it only when non-nil, or the tee
	// would keep a nil collector alive inside a non-nil interface.
	var traceBuf obs.Collector
	if s.traces != nil {
		traceBuf = s.traces
	}
	col := obs.TeeCollector(traceBuf, s.spans)
	var traceID uint64
	if fwd := r.Header.Get("X-Undefc-Trace-Id"); fwd != "" {
		if id, perr := obs.ParseTraceID(fwd); perr == nil && id != 0 {
			traceID = id
			ctx = obs.WithTraceID(ctx, col, id)
		}
	}
	if traceID == 0 && sample && s.cfg.TraceSample > 0 &&
		s.sampleCtr.Add(1)%uint64(s.cfg.TraceSample) == 0 {
		ctx, traceID = obs.WithTrace(ctx, col)
	}
	if traceID != 0 {
		w.Header().Set("X-Undefc-Trace-Id", obs.FormatTraceID(traceID))
	}
	return ctx, traceID
}

// runAnalysis is the leader's flight: admission, then one guarded
// compile+run through the shared cache.
func (s *Server) runAnalysis(ctx context.Context, src, file string, tool tools.Tool, copts driver.Options) outcome {
	qstart := time.Now()
	_, qsp := obs.StartSpan(ctx, "queue")
	release, err := s.queue.Acquire(ctx)
	qsp.End()
	if errors.Is(err, ErrQueueFull) {
		return outcome{status: http.StatusTooManyRequests, errCode: "queue-full",
			errMsg: fmt.Sprintf("admission queue at capacity (%d executing, %d waiting); retry later",
				s.cfg.Concurrency, s.cfg.QueueDepth)}
	}
	if err != nil {
		return outcome{status: http.StatusServiceUnavailable, errCode: "cancelled",
			errMsg: "request ended while waiting for admission: " + err.Error()}
	}
	defer release()
	queueNS := time.Since(qstart).Nanoseconds()
	s.latQueue.ObserveNS(queueNS)

	// The run is detached from the leader's request context on purpose:
	// followers coalescing onto this flight must not be cancelled by the
	// leader's client hanging up. The per-request watchdog
	// (tools.Config.Timeout) bounds it instead. RebindTrace keeps the
	// trace identity across the detach so compile/interp spans still land
	// in the leader's span tree.
	runCtx := obs.RebindTrace(context.Background(), ctx)

	var rep tools.Report
	gerr := fault.Guard(fault.StageServe, file, func() error {
		if err := s.cfg.Injector.Fire(SiteHandle, file); err != nil {
			return err
		}
		cstart := time.Now()
		prog, cerr := s.cache.CompileCtx(runCtx, src, file, copts)
		s.latCompile.Observe(time.Since(cstart))
		if cerr != nil {
			rep = tools.ReportFromError(cerr)
			if rep.Verdict == tools.Inconclusive {
				rep.Detail = "compile: " + cerr.Error()
			}
			return nil
		}
		s.warmed.Store(true) // any successful compile counts as warm
		rep = tool.AnalyzeProgram(runCtx, prog, file)
		s.latRun.Observe(rep.RunDuration)
		return nil
	})
	if gerr != nil {
		rep = tools.ReportFromError(gerr)
		if rep.Verdict == tools.InternalError {
			s.countPanic()
		}
	}
	status := http.StatusOK
	if rep.Verdict == tools.InternalError {
		status = http.StatusInternalServerError
	}
	return outcome{status: status, resp: AnalyzeResponse{
		Schema:  APISchema,
		File:    file,
		Result:  runner.ToolResultFrom(tool.Name(), rep),
		QueueNS: queueNS,
	}}
}

// ---------- /v1/batch ----------

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !decodeJSON(w, r, 16*s.cfg.MaxSourceBytes, &req) {
		return
	}
	var su *suite.Suite
	switch {
	case req.Suite != "" && len(req.Cases) > 0:
		writeError(w, http.StatusBadRequest, "bad-request", "suite and cases are mutually exclusive")
		return
	case req.Suite == "juliet":
		su = suite.Juliet()
	case req.Suite == "own":
		su = suite.Own()
	case req.Suite != "":
		writeError(w, http.StatusBadRequest, "bad-request", fmt.Sprintf("unknown suite %q (want juliet or own)", req.Suite))
		return
	case len(req.Cases) == 0:
		writeError(w, http.StatusBadRequest, "bad-request", "need a suite name or a case list")
		return
	default:
		if len(req.Cases) > s.cfg.MaxBatchCases {
			writeError(w, http.StatusRequestEntityTooLarge, "too-large",
				fmt.Sprintf("%d cases exceeds the %d-case limit", len(req.Cases), s.cfg.MaxBatchCases))
			return
		}
		su = &suite.Suite{Name: "batch"}
		for i, c := range req.Cases {
			if c.Name == "" {
				writeError(w, http.StatusBadRequest, "bad-request", fmt.Sprintf("case %d: name is required", i))
				return
			}
			su.Cases = append(su.Cases, suite.Case{Name: c.Name, Source: c.Source, Bad: c.Bad, Class: c.Class})
		}
	}
	model := s.model
	if req.Model != "" {
		var err error
		if model, err = ModelFor(req.Model); err != nil {
			writeError(w, http.StatusBadRequest, "bad-request", err.Error())
			return
		}
	}
	caseTimeout, err := parseTimeout(req.CaseTimeout, s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", "case_timeout: "+err.Error())
		return
	}
	tcfg := tools.Config{Model: model, Engine: s.cfg.Engine, Budget: s.budgetFor(req.MaxSteps), Metrics: req.Metrics, Injector: s.cfg.Injector, Flight: s.cfg.Flight}
	toolNames := req.Tools
	if len(toolNames) == 0 {
		toolNames = []string{"kcc"}
	}
	var ts []tools.Tool
	for _, name := range toolNames {
		t, err := toolFor(name, tcfg)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad-request", err.Error())
			return
		}
		ts = append(ts, t)
	}
	par := req.Parallelism
	if par <= 0 {
		par = 1
	}
	if par > s.cfg.Concurrency {
		par = s.cfg.Concurrency
	}

	// A forwarded trace identity covers the whole batch: the runner's
	// per-cell spans land in the span ring under it (minting is analyze-only;
	// a batch is traced when its caller decided to trace it).
	ctx, traceID := s.adoptTrace(w, r, false)

	// One admission slot covers the whole batch; its internal parallelism
	// is the request's own (clamped) knob.
	release, err := s.queue.Acquire(ctx)
	if errors.Is(err, ErrQueueFull) {
		s.setRetryAfter(w.Header())
		writeError(w, http.StatusTooManyRequests, "queue-full", "admission queue at capacity; retry later")
		return
	}
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "cancelled", err.Error())
		return
	}
	defer release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name()
	}
	enc.Encode(BatchHeader{Schema: APISchema, Suite: su.Name, Cases: len(su.Cases), Tools: names})
	flush()

	defines := append(append([]string{}, s.cfg.Defines...), req.Defines...)
	opts := runner.Options{
		Parallelism: par,
		Context:     ctx,
		Cache:       s.cache,
		Model:       model,
		Defines:     defines,
		CaseTimeout: caseTimeout,
		Injector:    s.cfg.Injector,
		OnCell: func(c runner.Cell) {
			s.countVerdict("batch", c.Report.Verdict.String())
			enc.Encode(BatchCellLine{Case: c.Case, ToolResult: runner.ToolResultFrom(c.Tool, c.Report)})
			flush()
		},
	}
	unit := "batch:" + su.Name
	var m *runner.MatrixResult
	gerr := fault.Guard(fault.StageServe, unit, func() error {
		if err := s.cfg.Injector.Fire(SiteHandle, unit); err != nil {
			return err
		}
		var rerr error
		m, rerr = runner.RunMatrix(su, ts, opts)
		return rerr
	})
	trailer := BatchTrailer{Done: gerr == nil}
	if traceID != 0 {
		trailer.TraceID = obs.FormatTraceID(traceID)
	}
	if m != nil {
		trailer.Frontend = runner.FrontendJSON{
			Compiles:  m.Frontend.Compiles,
			CacheHits: m.Frontend.CacheHits,
			Errors:    m.Frontend.Errors,
			TimeNS:    m.Frontend.Time.Nanoseconds(),
		}
		trailer.Failures = len(m.Failures)
		trailer.Skipped = m.Skipped
		trailer.Retried = m.Retried
	}
	if gerr != nil {
		code := "cancelled"
		if _, ok := fault.AsInternal(gerr); ok {
			code = "internal-error"
			s.countPanic()
		}
		trailer.Error = &APIError{Code: code, Message: gerr.Error()}
	}
	enc.Encode(trailer)
	flush()
}

// ---------- /v1/explore ----------

// onOff parses the tri-state search switches ("" = def, "on", "off").
func onOff(val string, def bool) (bool, error) {
	switch val {
	case "":
		return def, nil
	case "on":
		return true, nil
	case "off":
		return false, nil
	}
	return false, fmt.Errorf("want %q or %q, got %q", "on", "off", val)
}

// wantsNDJSON reports whether the client asked for the streamed explore
// form (the same content negotiation idea as wantsPrometheus: the
// buffered JSON body stays the default, streaming is opted into).
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req ExploreRequest
	if !decodeJSON(w, r, s.cfg.MaxSourceBytes, &req) {
		return
	}
	if req.Source == "" {
		writeError(w, http.StatusBadRequest, "bad-request", "source is required")
		return
	}
	file := req.File
	if file == "" {
		file = "request.c"
	}
	model := s.model
	if req.Model != "" {
		var err error
		if model, err = ModelFor(req.Model); err != nil {
			writeError(w, http.StatusBadRequest, "bad-request", err.Error())
			return
		}
	}
	timeout, err := parseTimeout(req.Timeout, s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", "timeout: "+err.Error())
		return
	}
	por, err := onOff(req.POR, true)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", "por: "+err.Error())
		return
	}
	dedup, err := onOff(req.Dedup, false)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", "dedup: "+err.Error())
		return
	}
	maxRuns := req.MaxRuns
	if maxRuns <= 0 {
		maxRuns = s.cfg.MaxExploreRuns
	}
	// One admission slot covers the whole search; its internal
	// parallelism is the request's own (clamped) knob — same rule as
	// /v1/batch.
	par := req.Parallelism
	if par <= 0 {
		par = 1
	}
	if par > s.cfg.Concurrency {
		par = s.cfg.Concurrency
	}
	release, err := s.queue.Acquire(r.Context())
	if errors.Is(err, ErrQueueFull) {
		s.setRetryAfter(w.Header())
		writeError(w, http.StatusTooManyRequests, "queue-full", "admission queue at capacity; retry later")
		return
	}
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "cancelled", err.Error())
		return
	}
	defer release()

	// As with batch, a forwarded trace identity makes the search's spans
	// retrievable from the ring; exploration never mints its own.
	actx, traceID := s.adoptTrace(w, r, false)
	ctx, cancel := context.WithTimeout(actx, timeout)
	defer cancel()
	ctx, sp := obs.StartSpan(ctx, "explore")
	copts := driver.Options{Model: model, Defines: s.cfg.Defines, Injector: s.cfg.Injector}

	// Compile outside the guard-and-stream block: a compile error (or a
	// fault before the search starts) is still a clean HTTP error in both
	// response forms, because nothing is on the wire yet.
	var prog *sema.Program
	gerr := fault.Guard(fault.StageServe, file, func() error {
		if err := s.cfg.Injector.Fire(SiteHandle, file); err != nil {
			return err
		}
		var cerr error
		prog, cerr = s.cache.CompileCtx(ctx, req.Source, file, copts)
		return cerr
	})
	if gerr != nil {
		sp.End()
		if ie, ok := fault.AsInternal(gerr); ok {
			s.countPanic()
			writeError(w, http.StatusInternalServerError, "internal-error", ie.Error())
			return
		}
		writeError(w, http.StatusUnprocessableEntity, "compile-error", gerr.Error())
		return
	}

	sopts := search.Options{
		MaxRuns:       maxRuns,
		MaxSteps:      req.MaxSteps,
		StopAtFirstUB: req.StopAtFirstUB,
		Engine:        s.cfg.Engine,
		Parallelism:   par,
		POR:           por,
		Dedup:         dedup,
	}
	if sopts.MaxSteps <= 0 {
		sopts.MaxSteps = s.cfg.MaxSteps
	}

	if !wantsNDJSON(r) {
		var resp *ExploreResponse
		gerr := fault.Guard(fault.StageServe, file, func() error {
			res := search.Explore(ctx, prog, sopts)
			resp = ExploreResponseFrom(file, res)
			s.countExplore(res.Stats)
			finishExploreSpan(sp, res)
			return nil
		})
		if gerr != nil {
			sp.End()
			s.countPanic()
			writeError(w, http.StatusInternalServerError, "internal-error", gerr.Error())
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	// Streamed form: header, one line per distinct behavior as the
	// frontier discovers it, trailer with the accounting. Once the header
	// is on the wire, failures travel in the trailer (as in /v1/batch).
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)
	enc.Encode(ExploreHeader{
		Schema: APISchema, File: file,
		MaxRuns: maxRuns, Parallelism: par, POR: por, Dedup: dedup,
	})
	flush()

	outcomes := 0
	sopts.OnOutcome = func(o search.Outcome, st search.Stats) {
		// OnOutcome calls are serialized by the search, so the encoder
		// and counter need no extra locking.
		outcomes++
		line := ExploreOutcomeLine{ExploreOutcome: ExploreOutcomeFrom(o), Runs: st.OrdersExplored}
		enc.Encode(line)
		flush()
	}
	var res search.Result
	gerr = fault.Guard(fault.StageServe, file, func() error {
		res = search.Explore(ctx, prog, sopts)
		return nil
	})
	trailer := ExploreTrailer{
		Done:          gerr == nil,
		Runs:          res.Runs,
		Exhausted:     res.Exhausted,
		Deterministic: res.Deterministic(),
		Outcomes:      outcomes,
		Stats:         &res.Stats,
	}
	if traceID != 0 {
		trailer.TraceID = obs.FormatTraceID(traceID)
	}
	if gerr != nil {
		s.countPanic()
		trailer.Error = &APIError{Code: "internal-error", Message: gerr.Error()}
	} else {
		s.countExplore(res.Stats)
	}
	finishExploreSpan(sp, res)
	enc.Encode(trailer)
	flush()
}

func finishExploreSpan(sp *obs.Span, res search.Result) {
	if sp.Recording() {
		sp.SetAttr("runs", fmt.Sprint(res.Runs))
		sp.SetAttr("pruned", fmt.Sprint(res.Stats.OrdersPruned))
		sp.SetAttr("deduped", fmt.Sprint(res.Stats.StatesDeduped))
		sp.SetAttr("outcomes", fmt.Sprint(len(res.Outcomes)))
	}
	sp.End()
}

// ---------- /v1/trace ----------

// handleTrace serves a sampled request trace as Chrome trace-event JSON
// (load it in chrome://tracing or https://ui.perfetto.dev). The id is the
// 16-hex-digit trace_id a traced /v1/analyze response carried.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeError(w, http.StatusNotFound, "tracing-disabled",
			"tracing is off: start the server with a trace sample rate")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	id, err := obs.ParseTraceID(idStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", "trace id: "+err.Error())
		return
	}
	spans := s.traces.Get(id)
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, "not-found",
			"no such trace (not sampled, still in flight, or evicted): "+idStr)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteChromeTrace(w, spans)
}

// ---------- /v1/spans ----------

// handleSpans serves this process's retained spans for one trace ID from
// the always-on span ring, in the explicit wire form — the per-node feed a
// cluster router stitches into a cross-node trace. Unlike /v1/trace it
// answers even when local sampling is off: any request that arrived with a
// trace identity left spans here (until byte pressure evicts them).
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/spans/")
	id, err := obs.ParseTraceID(idStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", "trace id: "+err.Error())
		return
	}
	spans := s.spans.Get(id)
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, "not-found",
			"no spans retained for trace (never traced here, or evicted): "+idStr)
		return
	}
	writeJSON(w, http.StatusOK, &SpansResponse{
		Schema:   APISchema,
		TraceID:  obs.FormatTraceID(id),
		ShardID:  s.cfg.ShardID,
		Instance: s.instance,
		Spans:    obs.SpansToJSON(spans),
	})
}

// ---------- /v1/coverage ----------

// handleCoverage serves the process-lifetime UB check-site coverage ledger:
// every behavior with a registered check site, how often its checks were
// evaluated, and how often they fired.
func (s *Server) handleCoverage(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, obs.CoverageSnapshot())
}

// ---------- /v1/artifact ----------

// handleArtifact serves raw artifact frames to peer shards: a shard that
// missed locally fetches the compiled program from whoever has it instead
// of recompiling. The key's own alphabet (64 hex digits) is the path
// guard; anything else — including traversal attempts — is a 404. The
// frame is served exactly as stored (magic, version, checksum), so the
// fetching side re-validates end to end.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	if s.artifacts == nil {
		writeError(w, http.StatusNotFound, "artifact-tier-disabled",
			"no artifact tier: start the server with an artifact directory")
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/v1/artifact/")
	frame, err := s.artifacts.ServeFrame(key)
	if err != nil {
		writeError(w, http.StatusNotFound, "not-found", "no artifact for key "+key)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(frame)))
	w.Write(frame)
}

// ---------- operational endpoints ----------

// handleHealthz is pure liveness: if the process can answer HTTP at all,
// it is alive — even while draining. Routability lives on /readyz; keeping
// the two apart means a drain never looks like a crash to a supervisor,
// and a supervisor never restarts a shard for politely refusing traffic.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is routability: 503 "draining" once shutdown has begun
// (the cluster prober takes the shard out of the ring before the
// listener closes), 503 "cold" until the compile cache has produced its
// first program (Server.Warmup, or any successful compile), 200 "ok"
// otherwise. Routers probe this endpoint, never /healthz.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.draining.Load():
		s.setRetryAfter(w.Header())
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case !s.warmed.Load():
		s.setRetryAfter(w.Header())
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "cold")
	default:
		fmt.Fprintln(w, "ok")
	}
}

// handleMetrics negotiates the exposition format: JSON stays the default
// (the API's own consumers and undefbench read it), and a Prometheus
// scraper — identified by its Accept header or an explicit
// ?format=prometheus — gets the text exposition format instead.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		writePrometheus(w, s.Metrics())
		return
	}
	writeJSON(w, http.StatusOK, s.Metrics())
}

func wantsPrometheus(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prometheus" {
		return true
	}
	accept := r.Header.Get("Accept")
	if strings.Contains(accept, "application/json") {
		return false
	}
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &ConfigResponse{
		Schema:         APISchema,
		Model:          s.cfg.Model,
		ShardID:        s.cfg.ShardID,
		Defines:        s.cfg.Defines,
		Engine:         s.cfg.Engine,
		Concurrency:    s.cfg.Concurrency,
		QueueDepth:     s.cfg.QueueDepth,
		DefaultTimeout: s.cfg.DefaultTimeout.String(),
		MaxTimeout:     s.cfg.MaxTimeout.String(),
		MaxSourceBytes: s.cfg.MaxSourceBytes,
		MaxBatchCases:  s.cfg.MaxBatchCases,
		MaxExploreRuns: s.cfg.MaxExploreRuns,
		InjectorArmed:  s.cfg.Injector != nil,
		TraceSample:    s.cfg.TraceSample,
		FlightEvents:   s.cfg.Flight,
		ArtifactDir:    s.cfg.ArtifactDir,
		ArtifactPeers:  s.cfg.ArtifactPeers,
	})
}

// ---------- plumbing ----------

// decodeJSON reads a size-limited JSON body, answering 413 (too large) or
// 400 (malformed) itself. It reports whether decoding succeeded.
func decodeJSON(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "too-large",
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, "bad-request", "body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := runner.WriteJSON(w, v); err != nil {
		// The status line is gone; nothing useful left to do but note it.
		fmt.Fprintf(w, `{"schema":%q,"error":{"code":"internal-error","message":"encode: %s"}}`,
			APISchema, err)
	}
}

// writeError serves the uniform ErrorResponse. Backpressure statuses
// carry Retry-After so well-behaved clients pace themselves; handlers
// with access to the live queue set the adaptive value first
// (Server.setRetryAfter), and this fallback only fills in the floor.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		if w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", "1")
		}
	}
	writeJSON(w, status, &ErrorResponse{Schema: APISchema, Error: APIError{Code: code, Message: msg}})
}
