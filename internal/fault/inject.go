package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ---------- site registry ----------

var (
	sitesMu sync.Mutex
	sites   = map[string]bool{}
)

// RegisterSite declares a named injection point in the pipeline and
// returns the name, so packages can register at var-init time:
//
//	var SiteCompile = fault.RegisterSite("driver.compile")
//
// The containment gate iterates Sites() to prove that a panic injected at
// every registered site is contained.
func RegisterSite(name string) string {
	sitesMu.Lock()
	sites[name] = true
	sitesMu.Unlock()
	return name
}

// Sites lists every registered injection point, sorted.
func Sites() []string {
	sitesMu.Lock()
	defer sitesMu.Unlock()
	out := make([]string, 0, len(sites))
	for s := range sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ---------- injector ----------

// Kind is the kind of injected fault.
type Kind uint8

// Fault kinds.
const (
	// KindPanic panics at the site (containment must convert it into an
	// InternalError without crashing the worker pool).
	KindPanic Kind = iota
	// KindError returns a deterministic error from the site.
	KindError
	// KindTransient returns a TransientError (the retry policy re-runs it).
	KindTransient
	// KindDelay sleeps at the site (watchdog and cancellation testing).
	KindDelay
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindError:
		return "error"
	case KindTransient:
		return "transient"
	case KindDelay:
		return "delay"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Rule arms one fault at one site. The zero modifiers mean "fire on every
// visit of the site"; After, Count, Match, and Prob narrow that.
type Rule struct {
	// Site is the registered injection point ("runner.analyze", ...).
	Site string
	// Kind selects what happens when the rule fires.
	Kind Kind
	// Msg is carried in the panic/error text (default "injected fault").
	Msg string
	// Delay is the sleep of a KindDelay rule.
	Delay time.Duration
	// After skips the first After matching visits.
	After int
	// Count caps the number of fires; 0 means unlimited.
	Count int
	// Match restricts the rule to units containing the substring.
	Match string
	// Prob fires the rule with the given probability per visit, drawn from
	// the injector's seeded generator (0 and 1 both mean "always");
	// replaying with the same seed reproduces the same decisions.
	Prob float64
}

// Hit records one fired injection, for replay assertions.
type Hit struct {
	Site  string `json:"site"`
	Unit  string `json:"unit,omitempty"`
	Kind  string `json:"kind"`
	Visit int    `json:"visit"`
}

type armedRule struct {
	Rule
	visits int
	fires  int
}

// Injector injects deterministic faults at named pipeline sites. All
// decisions are a pure function of the rule set, the seed, and the visit
// sequence, so a failing run replays exactly. A nil *Injector is inert:
// every method is safe to call and does nothing.
type Injector struct {
	mu     sync.Mutex
	rng    uint64
	rules  []*armedRule
	hits   []Hit
	onFire func(Hit)
}

// NewInjector arms the rules with the given probability seed.
func NewInjector(seed uint64, rules ...Rule) *Injector {
	in := &Injector{rng: seed ^ 0x9E3779B97F4A7C15}
	for _, r := range rules {
		rc := r
		in.rules = append(in.rules, &armedRule{Rule: rc})
	}
	return in
}

// OnFire installs a callback invoked (outside the injector lock) each time
// a rule fires — test hook for deterministic mid-case actions such as
// "cancel the run while this delay site is live".
func (in *Injector) OnFire(fn func(Hit)) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.onFire = fn
	in.mu.Unlock()
}

// Fire consults the armed rules for site against the named unit. A panic
// rule panics, a delay rule sleeps, and error/transient rules return the
// injected error; with no matching rule it returns nil. At most one rule
// fires per visit (first match in arming order wins).
func (in *Injector) Fire(site, unit string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	var fired *armedRule
	var hit Hit
	for _, r := range in.rules {
		if r.Site != site {
			continue
		}
		if r.Match != "" && !strings.Contains(unit, r.Match) {
			continue
		}
		r.visits++
		if r.visits <= r.After {
			continue
		}
		if r.Count > 0 && r.fires >= r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && in.next() > r.Prob {
			continue
		}
		r.fires++
		fired = r
		hit = Hit{Site: site, Unit: unit, Kind: r.Kind.String(), Visit: r.visits}
		in.hits = append(in.hits, hit)
		break
	}
	onFire := in.onFire
	in.mu.Unlock()
	if fired == nil {
		return nil
	}
	if onFire != nil {
		onFire(hit)
	}
	msg := fired.Msg
	if msg == "" {
		msg = "injected fault"
	}
	switch fired.Kind {
	case KindPanic:
		panic(fmt.Sprintf("fault injection: %s at %s (%s)", msg, site, unit))
	case KindDelay:
		time.Sleep(fired.Delay)
		return nil
	case KindTransient:
		return Transient(fmt.Errorf("injected fault at %s (%s): %s", site, unit, msg))
	default:
		return fmt.Errorf("injected fault at %s (%s): %s", site, unit, msg)
	}
}

// Hits returns a copy of the fired-injection log, in fire order.
func (in *Injector) Hits() []Hit {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Hit(nil), in.hits...)
}

// next draws a replayable uniform float in [0, 1) (splitmix64).
func (in *Injector) next() float64 {
	in.rng += 0x9E3779B97F4A7C15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// ---------- spec parsing (CLI) ----------

// ParseSpec parses the -inject grammar: comma-separated rules of the form
//
//	site=kind[:arg][*count][@after][~match][%prob]
//
// where kind is panic, error, transient, or delay (delay requires a
// duration arg: "interp.step=delay:50ms"). Examples:
//
//	runner.analyze=panic*1~CWE457         one panic, cases matching CWE457
//	driver.compile=transient@3            transient errors after 3 visits
//	interp.step=delay:1ms%0.01            1ms delay on ~1% of steps
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, rhs, ok := strings.Cut(part, "=")
		if !ok || site == "" {
			return nil, fmt.Errorf("fault spec %q: want site=kind[...]", part)
		}
		r := Rule{Site: site}
		// Split off the modifiers: the kind[:arg] head ends at the first
		// modifier delimiter.
		head := rhs
		mods := ""
		if i := strings.IndexAny(rhs, "*@~%"); i >= 0 {
			head, mods = rhs[:i], rhs[i:]
		}
		kind, arg, _ := strings.Cut(head, ":")
		switch kind {
		case "panic":
			r.Kind = KindPanic
			r.Msg = arg
		case "error":
			r.Kind = KindError
			r.Msg = arg
		case "transient":
			r.Kind = KindTransient
			r.Msg = arg
		case "delay":
			r.Kind = KindDelay
			if arg == "" {
				return nil, fmt.Errorf("fault spec %q: delay needs a duration (delay:50ms)", part)
			}
			d, err := time.ParseDuration(arg)
			if err != nil {
				return nil, fmt.Errorf("fault spec %q: %v", part, err)
			}
			r.Delay = d
		default:
			return nil, fmt.Errorf("fault spec %q: unknown kind %q (want panic, error, transient, or delay)", part, kind)
		}
		for mods != "" {
			delim := mods[0]
			rest := mods[1:]
			end := strings.IndexAny(rest, "*@~%")
			var val string
			if delim == '~' {
				// Match values may contain any character; they run to the
				// end of the rule.
				val, mods = rest, ""
			} else if end < 0 {
				val, mods = rest, ""
			} else {
				val, mods = rest[:end], rest[end:]
			}
			var err error
			switch delim {
			case '*':
				r.Count, err = strconv.Atoi(val)
			case '@':
				r.After, err = strconv.Atoi(val)
			case '~':
				r.Match = val
			case '%':
				r.Prob, err = strconv.ParseFloat(val, 64)
			}
			if err != nil {
				return nil, fmt.Errorf("fault spec %q: bad %c modifier %q: %v", part, delim, val, err)
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fault spec %q: no rules", spec)
	}
	return rules, nil
}
