// Package fault is the fault-containment layer of the analysis pipeline.
//
// The paper's thesis is that undefined inputs must produce a *diagnosed*
// outcome, never silent misbehavior. This package holds the pipeline to the
// same bar for its own failures: a panic anywhere in cpp/lexer/parser/sema/
// interp is contained at the stage boundary and converted into a typed
// InternalError that travels through reports like any other verdict,
// instead of tearing down the worker pool and losing every in-flight
// result. The package also classifies failures as transient (worth one
// retry) or deterministic (quarantined), and provides a seeded,
// replayable fault Injector used by tests to prove containment.
package fault

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// Pipeline stages, used to attribute a contained fault.
const (
	StageCompile = "compile" // preprocess/parse/typecheck (driver)
	StageAnalyze = "analyze" // a tool's analysis of one program
	StageRunner  = "runner"  // suite-runner plumbing around a cell
	StageServe   = "serve"   // a server request handler (internal/server)
)

// InternalError is a contained panic: the pipeline misbehaved, the fault
// was caught at a stage boundary, and the evidence (stage, unit, recovered
// value, stack) is carried as a value. All fields are plain strings so the
// error embeds directly into the undefc.report/v1 JSON schema.
type InternalError struct {
	// Stage is the pipeline stage that panicked (Stage* constants).
	Stage string `json:"stage"`
	// Unit names the translation unit or case being processed.
	Unit string `json:"unit,omitempty"`
	// Value is the rendered panic value.
	Value string `json:"value"`
	// Stack is the recovered goroutine stack.
	Stack string `json:"stack,omitempty"`
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("internal error in %s stage (%s): %s", e.Stage, e.Unit, e.Value)
}

// Contain converts a recovered panic value into an *InternalError,
// capturing the current stack. Call it from a deferred recover handler.
func Contain(stage, unit string, r any) *InternalError {
	return &InternalError{
		Stage: stage,
		Unit:  unit,
		Value: fmt.Sprint(r),
		Stack: string(debug.Stack()),
	}
}

// Recover is the deferred form of containment:
//
//	func Compile(...) (prog *Program, err error) {
//		defer fault.Recover(fault.StageCompile, file, &err)
//		...
//	}
//
// A panic in the function body is converted into an *InternalError
// assigned to *errp; a normal return leaves *errp untouched.
func Recover(stage, unit string, errp *error) {
	if r := recover(); r != nil {
		*errp = Contain(stage, unit, r)
	}
}

// Guard runs fn under panic containment: a panic in fn returns as an
// *InternalError instead of unwinding into the caller.
func Guard(stage, unit string, fn func() error) (err error) {
	defer Recover(stage, unit, &err)
	return fn()
}

// AsInternal reports whether err is (or wraps) a contained panic.
func AsInternal(err error) (*InternalError, bool) {
	var ie *InternalError
	if errors.As(err, &ie) {
		return ie, true
	}
	return nil, false
}

// TransientError marks a failure as transient: re-running the same work
// may succeed, so the runner's degradation policy retries it once before
// quarantining. Compile caches must never memoize a transient failure.
type TransientError struct{ Err error }

func (e *TransientError) Error() string { return "transient: " + e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as transient; nil stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether err is (or wraps) a TransientError.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}
