package fault

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestGuardContainsPanic(t *testing.T) {
	err := Guard(StageAnalyze, "case1.c", func() error {
		panic("boom")
	})
	ie, ok := AsInternal(err)
	if !ok {
		t.Fatalf("err = %v, want InternalError", err)
	}
	if ie.Stage != StageAnalyze || ie.Unit != "case1.c" || ie.Value != "boom" {
		t.Errorf("contained fault = %+v", ie)
	}
	if !strings.Contains(ie.Stack, "fault_test.go") {
		t.Errorf("stack does not point at the panic site:\n%s", ie.Stack)
	}
}

func TestGuardPassesThroughErrors(t *testing.T) {
	want := errors.New("plain failure")
	if err := Guard(StageCompile, "u", func() error { return want }); err != want {
		t.Errorf("err = %v, want the original error", err)
	}
	if err := Guard(StageCompile, "u", func() error { return nil }); err != nil {
		t.Errorf("err = %v, want nil", err)
	}
}

func TestTransientClassification(t *testing.T) {
	base := errors.New("flaky io")
	tr := Transient(base)
	if !IsTransient(tr) {
		t.Error("Transient() not classified transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", tr)) {
		t.Error("wrapped transient not classified transient")
	}
	if IsTransient(base) || IsTransient(nil) {
		t.Error("non-transient misclassified")
	}
	if !errors.Is(tr, base) {
		t.Error("Transient hides the underlying error")
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Fire("any.site", "u"); err != nil {
		t.Errorf("nil injector fired: %v", err)
	}
	if in.Hits() != nil {
		t.Error("nil injector has hits")
	}
	in.OnFire(func(Hit) {})
}

func TestInjectorRuleModifiers(t *testing.T) {
	in := NewInjector(1,
		Rule{Site: "s", Kind: KindError, After: 2, Count: 2, Match: "target"})
	var errs int
	for i := 0; i < 10; i++ {
		if err := in.Fire("s", "target.c"); err != nil {
			errs++
		}
		if err := in.Fire("s", "other.c"); err != nil {
			t.Fatal("rule fired on non-matching unit")
		}
		if err := in.Fire("other.site", "target.c"); err != nil {
			t.Fatal("rule fired on non-matching site")
		}
	}
	if errs != 2 {
		t.Errorf("fired %d times, want 2 (After=2 skips two visits, Count=2 caps fires)", errs)
	}
	hits := in.Hits()
	if len(hits) != 2 || hits[0].Visit != 3 || hits[1].Visit != 4 {
		t.Errorf("hits = %+v, want visits 3 and 4", hits)
	}
}

func TestInjectorPanicKind(t *testing.T) {
	in := NewInjector(0, Rule{Site: "s", Kind: KindPanic, Msg: "kaboom"})
	err := Guard(StageRunner, "u", func() error {
		return in.Fire("s", "u")
	})
	ie, ok := AsInternal(err)
	if !ok || !strings.Contains(ie.Value, "kaboom") {
		t.Fatalf("err = %v, want contained injected panic", err)
	}
}

func TestInjectorTransientKind(t *testing.T) {
	in := NewInjector(0, Rule{Site: "s", Kind: KindTransient})
	if err := in.Fire("s", "u"); !IsTransient(err) {
		t.Errorf("err = %v, want transient", err)
	}
}

func TestInjectorDelayAndOnFire(t *testing.T) {
	in := NewInjector(0, Rule{Site: "s", Kind: KindDelay, Delay: time.Millisecond, Count: 1})
	var mu sync.Mutex
	var seen []Hit
	in.OnFire(func(h Hit) {
		mu.Lock()
		seen = append(seen, h)
		mu.Unlock()
	})
	start := time.Now()
	if err := in.Fire("s", "u"); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < time.Millisecond {
		t.Error("delay rule did not sleep")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[0].Kind != "delay" {
		t.Errorf("OnFire saw %+v", seen)
	}
}

func TestInjectorSeededProbReplays(t *testing.T) {
	decisions := func(seed uint64) []bool {
		in := NewInjector(seed, Rule{Site: "s", Kind: KindError, Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Fire("s", "u") != nil
		}
		return out
	}
	a, b := decisions(42), decisions(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at visit %d", i)
		}
	}
	c := decisions(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical decisions (suspicious)")
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Errorf("prob 0.5 fired %d/%d times", fired, len(a))
	}
}

func TestRegisterSite(t *testing.T) {
	name := RegisterSite("test.site")
	if name != "test.site" {
		t.Errorf("RegisterSite returned %q", name)
	}
	found := false
	for _, s := range Sites() {
		if s == "test.site" {
			found = true
		}
	}
	if !found {
		t.Errorf("Sites() = %v, missing test.site", Sites())
	}
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("runner.analyze=panic*1~CWE457, driver.compile=transient:io@3, interp.step=delay:50ms%0.25")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(rules))
	}
	r := rules[0]
	if r.Site != "runner.analyze" || r.Kind != KindPanic || r.Count != 1 || r.Match != "CWE457" {
		t.Errorf("rule 0 = %+v", r)
	}
	r = rules[1]
	if r.Site != "driver.compile" || r.Kind != KindTransient || r.Msg != "io" || r.After != 3 {
		t.Errorf("rule 1 = %+v", r)
	}
	r = rules[2]
	if r.Site != "interp.step" || r.Kind != KindDelay || r.Delay != 50*time.Millisecond || r.Prob != 0.25 {
		t.Errorf("rule 2 = %+v", r)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"", "nosite", "s=explode", "s=delay", "s=panic*x", "s=panic%x",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", bad)
		}
	}
}
