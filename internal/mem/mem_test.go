package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/ctypes"
)

var m = ctypes.LP64()

func TestIntRoundTrip(t *testing.T) {
	types := []*ctypes.Type{
		ctypes.TChar, ctypes.TUChar, ctypes.TShort, ctypes.TUShort,
		ctypes.TInt, ctypes.TUInt, ctypes.TLong, ctypes.TULong,
		ctypes.TLongLong, ctypes.TULongLong,
	}
	f := func(raw uint64, pick uint8) bool {
		ty := types[int(pick)%len(types)]
		want := m.Wrap(ty, raw)
		enc := EncodeInt(m, ty, want)
		if int64(len(enc)) != m.Size(ty) {
			return false
		}
		got, res := DecodeInt(m, ty, enc)
		return res == DecodeOK && got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		enc := EncodeFloat(m, ctypes.TDouble, x)
		got, res := DecodeFloat(m, ctypes.TDouble, enc)
		return res == DecodeOK && (got == x || got != got && x != x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// float truncates.
	enc := EncodeFloat(m, ctypes.TFloat, 1.5)
	if len(enc) != 4 {
		t.Fatalf("float encoding is %d bytes", len(enc))
	}
	got, res := DecodeFloat(m, ctypes.TFloat, enc)
	if res != DecodeOK || got != 1.5 {
		t.Errorf("float round trip: %v %v", got, res)
	}
}

func TestPtrRoundTrip(t *testing.T) {
	pt := ctypes.PointerTo(ctypes.TInt)
	p := Ptr{T: pt, Base: 7, Off: 12}
	enc := EncodePtr(m, p)
	if len(enc) != 8 {
		t.Fatalf("pointer is %d bytes", len(enc))
	}
	got, res := DecodePtr(m, pt, enc)
	if res != PtrOK || got != p {
		t.Errorf("round trip: %v %v", got, res)
	}
}

// TestPtrPartialReassembly checks the §4.3.2 property: a pointer can only
// be reconstituted from ALL of its bytes, in order.
func TestPtrPartialReassembly(t *testing.T) {
	pt := ctypes.PointerTo(ctypes.TInt)
	p := Ptr{T: pt, Base: 7, Off: 12}
	q := Ptr{T: pt, Base: 9, Off: 0}
	pe, qe := EncodePtr(m, p), EncodePtr(m, q)

	// Mixed fragments: torn.
	mixed := append(append([]Byte{}, pe[:4]...), qe[4:]...)
	if _, res := DecodePtr(m, pt, mixed); res != PtrTorn {
		t.Errorf("mixed fragments decoded: %v", res)
	}
	// Out of order: torn.
	swapped := append([]Byte{}, pe...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if _, res := DecodePtr(m, pt, swapped); res != PtrTorn {
		t.Errorf("out-of-order fragments decoded: %v", res)
	}
	// One byte replaced by an unknown: indeterminate.
	withUnknown := append([]Byte{}, pe...)
	withUnknown[3] = Unknown{ID: 1}
	if _, res := DecodePtr(m, pt, withUnknown); res != PtrIndeterminate {
		t.Errorf("unknown byte decoded: %v", res)
	}
}

func TestNullPtrEncoding(t *testing.T) {
	pt := ctypes.PointerTo(ctypes.TChar)
	null := Ptr{T: pt, Base: NullBase}
	enc := EncodePtr(m, null)
	for _, b := range enc {
		c, ok := b.(Concrete)
		if !ok || c.B != 0 {
			t.Fatalf("null pointer encoding has non-zero byte %v", b)
		}
	}
	got, res := DecodePtr(m, pt, enc)
	if res != PtrOK || !got.IsNull() {
		t.Errorf("null decode: %v %v", got, res)
	}
}

func TestForgedPtr(t *testing.T) {
	pt := ctypes.PointerTo(ctypes.TInt)
	forged := EncodeInt(m, ctypes.TULong, 0xdeadbeef)
	if _, res := DecodePtr(m, pt, forged); res != PtrFromBytes {
		t.Errorf("forged pointer: %v", res)
	}
}

func TestIndeterminateRead(t *testing.T) {
	s := NewStore()
	o, err := s.Alloc(ObjAuto, 4, "x", ctypes.TInt)
	if err != nil {
		t.Fatal(err)
	}
	if _, res := DecodeInt(m, ctypes.TInt, o.Data); res != DecodeIndeterminate {
		t.Errorf("fresh object readable: %v", res)
	}
	o.Zero(0, 4)
	v, res := DecodeInt(m, ctypes.TInt, o.Data)
	if res != DecodeOK || v != 0 {
		t.Errorf("zeroed read: %d %v", v, res)
	}
}

func TestPointerBytesAsInt(t *testing.T) {
	p := Ptr{T: ctypes.PointerTo(ctypes.TInt), Base: 3, Off: 0}
	enc := EncodePtr(m, p)
	if _, res := DecodeInt(m, ctypes.TULong, enc); res != DecodePointerBytes {
		t.Errorf("pointer bytes read as integer: %v", res)
	}
}

func TestStoreLifecycle(t *testing.T) {
	s := NewStore()
	o, err := s.Alloc(ObjHeap, 16, "malloc", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Live {
		t.Error("fresh object must be live")
	}
	if s.LiveBytes() != 16 {
		t.Errorf("live bytes = %d", s.LiveBytes())
	}
	s.Kill(o.ID)
	if o.Live {
		t.Error("killed object must be dead")
	}
	if s.LiveBytes() != 0 {
		t.Errorf("live bytes after kill = %d", s.LiveBytes())
	}
	// Dead objects are still findable (dangling diagnosis).
	if _, ok := s.Obj(o.ID); !ok {
		t.Error("dead object should remain identifiable")
	}
	// Double kill is a no-op.
	s.Kill(o.ID)
	if s.LiveBytes() != 0 {
		t.Error("double kill changed accounting")
	}
}

func TestNotWritable(t *testing.T) {
	s := NewStore()
	o, _ := s.Alloc(ObjStatic, 8, "c", nil)
	s.MarkNotWritable(o.ID, 0, 4)
	if !s.IsNotWritable(o.ID, 2, 2) {
		t.Error("const range not detected")
	}
	if s.IsNotWritable(o.ID, 4, 4) {
		t.Error("non-const range flagged")
	}
	if !s.IsNotWritable(o.ID, 3, 2) {
		t.Error("overlapping range not detected")
	}
}

func TestAllocLimits(t *testing.T) {
	s := NewStore()
	s.MaxBytes = 100
	if _, err := s.Alloc(ObjHeap, 101, "big", nil); err == nil {
		t.Error("expected limit error")
	}
	if _, err := s.Alloc(ObjHeap, -1, "neg", nil); err == nil {
		t.Error("expected error for negative size")
	}
}

func TestTruthiness(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
		ok   bool
	}{
		{Int{T: ctypes.TInt, Bits: 0}, false, true},
		{Int{T: ctypes.TInt, Bits: 5}, true, true},
		{Float{T: ctypes.TDouble, F: 0}, false, true},
		{Float{T: ctypes.TDouble, F: 0.1}, true, true},
		{Ptr{T: ctypes.PointerTo(ctypes.TInt), Base: NullBase}, false, true},
		{Ptr{T: ctypes.PointerTo(ctypes.TInt), Base: 3}, true, true},
		{Void{}, false, false},
	}
	for _, c := range cases {
		got, ok := IsTruthy(c.v)
		if got != c.want || ok != c.ok {
			t.Errorf("IsTruthy(%v) = %v,%v", c.v, got, ok)
		}
	}
}

func TestUnknownBytesDistinct(t *testing.T) {
	s := NewStore()
	a := s.FreshUnknown().(Unknown)
	b := s.FreshUnknown().(Unknown)
	if a.ID == b.ID {
		t.Error("unknown bytes must be distinguishable")
	}
}
