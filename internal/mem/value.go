// Package mem implements the symbolic memory model of the paper's §4.3 and
// the runtime values that inhabit it.
//
// Pointers are symbolic base/offset pairs sym(B)+O — never raw integers —
// so relational comparison of pointers into different objects has no
// semantics (§4.3.1). Memory is a map from object bases to byte arrays;
// a byte is either a concrete octet, a pointer fragment subObject(p, i)
// (§4.3.2), or an indeterminate unknown byte (§4.3.3).
package mem

import (
	"fmt"
	"math"

	"repro/internal/ctypes"
)

// ObjID identifies an allocated object (the paper's base address B).
type ObjID int64

// NullBase is the base of the null pointer.
const NullBase ObjID = 0

// InvalidBase marks pointers forged from integers (provenance lost).
const InvalidBase ObjID = -1

// Value is a C runtime value.
type Value interface {
	// CType returns the value's C type.
	CType() *ctypes.Type
	isValue()
}

// Int is an integer value. Bits holds the canonical 64-bit representation:
// sign-extended two's complement for signed types, zero-extended otherwise
// (see ctypes.Model.Wrap).
type Int struct {
	T    *ctypes.Type
	Bits uint64
}

// CType implements Value.
func (v Int) CType() *ctypes.Type { return v.T }
func (v Int) isValue()            {}

// Signed returns the value interpreted as signed.
func (v Int) Signed() int64 { return int64(v.Bits) }

func (v Int) String() string { return fmt.Sprintf("%d:%s", int64(v.Bits), v.T) }

// MakeInt wraps raw into t's range under m and returns the Int.
func MakeInt(m *ctypes.Model, t *ctypes.Type, raw uint64) Int {
	return Int{T: t, Bits: m.Wrap(t, raw)}
}

// Pre-boxed small values of the canonical arithmetic types. Value
// computations produce Value interfaces, and without this table every 0,
// 1, truth value, and small loop counter boxes a fresh heap allocation —
// the dominant allocation source in interpreter hot loops.
var (
	boxedInt   [256]Value
	boxedUInt  [256]Value
	boxedChar  [256]Value
	boxedLong  [256]Value
	boxedULong [256]Value
)

func init() {
	for i := range boxedInt {
		boxedInt[i] = Int{T: ctypes.TInt, Bits: uint64(i)}
		boxedUInt[i] = Int{T: ctypes.TUInt, Bits: uint64(i)}
		boxedChar[i] = Int{T: ctypes.TChar, Bits: uint64(i)}
		boxedLong[i] = Int{T: ctypes.TLong, Bits: uint64(i)}
		boxedULong[i] = Int{T: ctypes.TULong, Bits: uint64(i)}
	}
}

// BoxInt returns Int{T: t, Bits: bits} as a Value, sharing pre-boxed
// storage for small values of the canonical unqualified types. bits must
// already be wrapped to t's width (pair with Model.Wrap, as MakeInt does).
// Sharing is safe because values are immutable.
func BoxInt(t *ctypes.Type, bits uint64) Value {
	if bits < 256 {
		switch t {
		case ctypes.TInt:
			return boxedInt[bits]
		case ctypes.TUInt:
			return boxedUInt[bits]
		case ctypes.TChar:
			return boxedChar[bits]
		case ctypes.TLong:
			return boxedLong[bits]
		case ctypes.TULong:
			return boxedULong[bits]
		}
	}
	return Int{T: t, Bits: bits}
}

// Float is a real floating value.
type Float struct {
	T *ctypes.Type
	F float64
}

// CType implements Value.
func (v Float) CType() *ctypes.Type { return v.T }
func (v Float) isValue()            {}

func (v Float) String() string { return fmt.Sprintf("%g:%s", v.F, v.T) }

// Ptr is a symbolic pointer sym(Base)+Off of pointer type T.
// Base == NullBase is the null pointer; Base == InvalidBase is a pointer
// whose provenance was destroyed (e.g. conjured from an integer).
type Ptr struct {
	T    *ctypes.Type // the pointer type (Ptr kind), not the pointee
	Base ObjID
	Off  int64
}

// CType implements Value.
func (v Ptr) CType() *ctypes.Type { return v.T }
func (v Ptr) isValue()            {}

// IsNull reports whether v is a null pointer.
func (v Ptr) IsNull() bool { return v.Base == NullBase }

func (v Ptr) String() string {
	if v.IsNull() {
		return "NULL:" + v.T.String()
	}
	return fmt.Sprintf("sym(%d)+%d:%s", v.Base, v.Off, v.T)
}

// Bytes is an aggregate (struct/union/array) rvalue: its object
// representation.
type Bytes struct {
	T    *ctypes.Type
	Data []Byte
}

// CType implements Value.
func (v Bytes) CType() *ctypes.Type { return v.T }
func (v Bytes) isValue()            {}

// RawByte is the value read through a character lvalue from a byte that is
// not a concrete octet (a pointer fragment or an indeterminate byte). It
// can be copied but not used in arithmetic — the paper's §4.3.2/§4.3.3
// mechanism for byte-wise copying of pointers and indeterminate memory.
type RawByte struct {
	T *ctypes.Type
	B Byte
}

// CType implements Value.
func (v RawByte) CType() *ctypes.Type { return v.T }
func (v RawByte) isValue()            {}

// NoReturn is the "value" of a call to a function that fell off its end (or
// executed `return;`) while having a non-void return type. Using it is UB
// (C11 §6.9.1:12); discarding it is fine.
type NoReturn struct{ T *ctypes.Type }

// CType implements Value.
func (v NoReturn) CType() *ctypes.Type { return v.T }
func (v NoReturn) isValue()            {}

// Void is the value of a void expression — it has no value; any use is UB
// (C11 §6.3.2.2).
type Void struct{}

// CType implements Value.
func (Void) CType() *ctypes.Type { return ctypes.TVoid }
func (Void) isValue()            {}

// IsTruthy reports whether a scalar value compares unequal to zero.
// The second result is false when the value has no truth value (unknown,
// void, aggregate).
func IsTruthy(v Value) (bool, bool) {
	switch v := v.(type) {
	case Int:
		return v.Bits != 0, true
	case Float:
		return v.F != 0, true
	case Ptr:
		return !v.IsNull(), true
	}
	return false, false
}

// ---------- bytes ----------

// Byte is one byte of the object representation.
type Byte interface{ isByte() }

// Concrete is an ordinary octet.
type Concrete struct{ B uint8 }

func (Concrete) isByte() {}

// PtrFrag is byte Idx of the representation of pointer P — the paper's
// subObject(p, i). A pointer can only be reconstituted from all of its
// fragments, in order (§4.3.2).
type PtrFrag struct {
	P   Ptr
	Idx int
}

func (PtrFrag) isByte() {}

// Unknown is an indeterminate byte — the paper's unknown(N). ID
// distinguishes independent indeterminate values.
type Unknown struct{ ID int64 }

func (Unknown) isByte() {}

// ---------- encoding ----------

// EncodeInt renders an integer value as size little-endian concrete bytes.
func EncodeInt(m *ctypes.Model, t *ctypes.Type, bits uint64) []Byte {
	return AppendInt(nil, m, t, bits)
}

// AppendInt appends the little-endian encoding of an integer of type t to
// buf and returns the extended slice. The allocation-free sibling of
// EncodeInt for hot store paths that reuse a scratch buffer.
func AppendInt(buf []Byte, m *ctypes.Model, t *ctypes.Type, bits uint64) []Byte {
	n := m.Size(t)
	for i := int64(0); i < n; i++ {
		buf = append(buf, Concrete{B: uint8(bits >> (8 * i))})
	}
	return buf
}

// DecodeIntResult describes why a decode failed.
type DecodeIntResult int

// Decode outcomes.
const (
	DecodeOK            DecodeIntResult = iota
	DecodeIndeterminate                 // contains Unknown bytes
	DecodePointerBytes                  // contains pointer fragments
)

// DecodeInt reads size little-endian bytes as an integer of type t.
func DecodeInt(m *ctypes.Model, t *ctypes.Type, data []Byte) (uint64, DecodeIntResult) {
	var bits uint64
	for i, b := range data {
		switch b := b.(type) {
		case Concrete:
			bits |= uint64(b.B) << (8 * i)
		case Unknown:
			return 0, DecodeIndeterminate
		case PtrFrag:
			return 0, DecodePointerBytes
		}
	}
	return m.Wrap(t, bits), DecodeOK
}

// EncodeFloat renders a floating value as concrete bytes.
func EncodeFloat(m *ctypes.Model, t *ctypes.Type, f float64) []Byte {
	switch m.Size(t) {
	case 4:
		return EncodeInt(m, ctypes.TUInt, uint64(math.Float32bits(float32(f))))
	default:
		b := EncodeInt(m, ctypes.TULongLong, math.Float64bits(f))
		// long double: pad to the model's size with zero bytes.
		for int64(len(b)) < m.Size(t) {
			b = append(b, Concrete{B: 0})
		}
		return b
	}
}

// AppendFloat is the allocation-free sibling of EncodeFloat.
func AppendFloat(buf []Byte, m *ctypes.Model, t *ctypes.Type, f float64) []Byte {
	switch n := m.Size(t); n {
	case 4:
		return AppendInt(buf, m, ctypes.TUInt, uint64(math.Float32bits(float32(f))))
	default:
		start := len(buf)
		buf = AppendInt(buf, m, ctypes.TULongLong, math.Float64bits(f))
		for int64(len(buf)-start) < n {
			buf = append(buf, Concrete{B: 0})
		}
		return buf
	}
}

// DecodeFloat reads bytes as a floating value of type t.
func DecodeFloat(m *ctypes.Model, t *ctypes.Type, data []Byte) (float64, DecodeIntResult) {
	switch m.Size(t) {
	case 4:
		bits, res := DecodeInt(m, ctypes.TUInt, data)
		if res != DecodeOK {
			return 0, res
		}
		return float64(math.Float32frombits(uint32(bits))), DecodeOK
	default:
		bits, res := DecodeInt(m, ctypes.TULongLong, data[:8])
		if res != DecodeOK {
			return 0, res
		}
		for _, b := range data[8:] {
			if _, ok := b.(Concrete); !ok {
				return 0, DecodeIndeterminate
			}
		}
		return math.Float64frombits(bits), DecodeOK
	}
}

// EncodePtr splits a pointer into fragments (the paper's subObject bytes).
// A null pointer is encoded as all-zero concrete bytes so that
// memset(&p, 0, sizeof p) produces a null pointer, as on real hardware.
func EncodePtr(m *ctypes.Model, p Ptr) []Byte {
	return AppendPtr(nil, m, p)
}

// AppendPtr is the allocation-free sibling of EncodePtr (the fragment
// boxes themselves still allocate; the slice header does not).
func AppendPtr(buf []Byte, m *ctypes.Model, p Ptr) []Byte {
	n := int(m.SizePtr)
	if p.IsNull() {
		for i := 0; i < n; i++ {
			buf = append(buf, Concrete{B: 0})
		}
		return buf
	}
	for i := 0; i < n; i++ {
		buf = append(buf, PtrFrag{P: p, Idx: i})
	}
	return buf
}

// DecodePtrResult describes the outcome of reassembling a pointer.
type DecodePtrResult int

// Pointer decode outcomes.
const (
	PtrOK            DecodePtrResult = iota
	PtrIndeterminate                 // unknown bytes present
	PtrFromBytes                     // arbitrary concrete bytes (forged pointer)
	PtrTorn                          // fragments of different pointers, or out of order
)

// DecodePtr reassembles a pointer of type t from its bytes. Only a complete,
// in-order set of fragments of a single pointer yields the pointer back
// (§4.3.2: "this allows the reconstruction of the original pointer, but
// only if given all the bytes"). All-zero concrete bytes yield null.
func DecodePtr(m *ctypes.Model, t *ctypes.Type, data []Byte) (Ptr, DecodePtrResult) {
	if len(data) == 0 {
		return Ptr{}, PtrTorn
	}
	if first, ok := data[0].(PtrFrag); ok {
		for i, b := range data {
			if _, unk := b.(Unknown); unk {
				return Ptr{}, PtrIndeterminate
			}
			f, ok := b.(PtrFrag)
			if !ok || f.Idx != i || f.P != first.P {
				return Ptr{}, PtrTorn
			}
		}
		p := first.P
		p.T = t
		return p, PtrOK
	}
	allZero := true
	for _, b := range data {
		switch b := b.(type) {
		case Concrete:
			if b.B != 0 {
				allZero = false
			}
		case Unknown:
			return Ptr{}, PtrIndeterminate
		case PtrFrag:
			return Ptr{}, PtrTorn
		}
	}
	if allZero {
		return Ptr{T: t, Base: NullBase}, PtrOK
	}
	return Ptr{}, PtrFromBytes
}
