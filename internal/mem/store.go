package mem

import (
	"fmt"

	"repro/internal/ctypes"
)

// ObjKind classifies an object's storage duration and provenance.
type ObjKind int

// Object kinds.
const (
	ObjStatic ObjKind = iota // file-scope and static-local objects
	ObjAuto                  // block-scope automatic objects
	ObjHeap                  // malloc/calloc/realloc results
	ObjFunc                  // function designators
	ObjString                // string literals
)

func (k ObjKind) String() string {
	switch k {
	case ObjStatic:
		return "static"
	case ObjAuto:
		return "auto"
	case ObjHeap:
		return "heap"
	case ObjFunc:
		return "function"
	case ObjString:
		return "string literal"
	}
	return "object"
}

// Object is one allocated object: the memory cell entry B ↦ obj(Len, bytes).
type Object struct {
	ID   ObjID
	Kind ObjKind
	Size int64
	Data []Byte

	// Live is false once the object's lifetime has ended (scope exit,
	// free); the bytes are retained so dangling uses can be diagnosed.
	Live bool

	// Name is the declared name (diagnostics), FuncName the designated
	// function for ObjFunc.
	Name     string
	FuncName string

	// DeclType is the object's declared/effective type (for the
	// strict-aliasing check, C11 §6.5:7); nil for heap objects until a
	// value is stored (we then leave it nil — heap memory takes the type
	// of what is stored per access, checked shallowly).
	DeclType *ctypes.Type
}

// Loc is one byte location (the elements of locsWrittenTo / notWritable).
type Loc struct {
	Obj ObjID
	Off int64
}

// Store is the memory: a map from base addresses to objects, plus the
// notWritable set of const locations (paper §4.2.2). Base addresses are
// allocated densely from 1, so the "map" is a slice indexed by ObjID-1 —
// every load and store resolves its object with one bounds check instead
// of a hash lookup.
type Store struct {
	objs        []*Object // objs[id-1] is the object with base id
	unknownSeq  int64
	notWritable map[Loc]struct{}

	// Limits (failure injection / runaway guards).
	MaxObjects int
	MaxBytes   int64
	liveBytes  int64

	// kills counts lifetime terminations (monotonic, never reset). The
	// search driver's partial-order reduction snapshots it around operand
	// evaluation: frame teardown and free() don't emit observer events, so
	// a counter delta is how an operand that ends lifetimes is detected.
	kills int64
}

// NewStore returns an empty memory.
func NewStore() *Store {
	return &Store{
		notWritable: make(map[Loc]struct{}),
		MaxObjects:  1 << 20,
		MaxBytes:    1 << 24, // 16 MiB of C bytes (each costs ~16x in Go)
	}
}

// ErrLimit is returned when an allocation exceeds the store's limits.
var ErrLimit = fmt.Errorf("memory limit exceeded")

// Alloc creates a new live object of size bytes, all indeterminate.
func (s *Store) Alloc(kind ObjKind, size int64, name string, declType *ctypes.Type) (*Object, error) {
	if len(s.objs) >= s.MaxObjects || s.liveBytes+size > s.MaxBytes || size < 0 {
		return nil, ErrLimit
	}
	o := &Object{
		ID:       ObjID(len(s.objs) + 1),
		Kind:     kind,
		Size:     size,
		Data:     make([]Byte, size),
		Live:     true,
		Name:     name,
		DeclType: declType,
	}
	for i := range o.Data {
		s.unknownSeq++
		o.Data[i] = Unknown{ID: s.unknownSeq}
	}
	s.objs = append(s.objs, o)
	s.liveBytes += size
	return o, nil
}

// AllocFunc creates the designator object for a function.
func (s *Store) AllocFunc(name string) *Object {
	o := &Object{ID: ObjID(len(s.objs) + 1), Kind: ObjFunc, Size: 0, Live: true, Name: name, FuncName: name}
	s.objs = append(s.objs, o)
	return o
}

// Obj looks up an object by base. It returns objects whose lifetime has
// ended too — callers decide whether that is an error.
func (s *Store) Obj(id ObjID) (*Object, bool) {
	if id < 1 || int64(id) > int64(len(s.objs)) {
		return nil, false
	}
	return s.objs[id-1], true
}

// Kill ends an object's lifetime, retaining its identity for dangling-use
// diagnosis.
func (s *Store) Kill(id ObjID) {
	if o, ok := s.Obj(id); ok && o.Live {
		o.Live = false
		s.liveBytes -= o.Size
		s.kills++
	}
}

// Zero fills [off, off+n) with concrete zero bytes.
func (o *Object) Zero(off, n int64) {
	for i := off; i < off+n && i < o.Size; i++ {
		o.Data[i] = Concrete{B: 0}
	}
}

// MarkNotWritable records [off, off+n) of obj as const (paper §4.2.2).
func (s *Store) MarkNotWritable(obj ObjID, off, n int64) {
	for i := off; i < off+n; i++ {
		s.notWritable[Loc{Obj: obj, Off: i}] = struct{}{}
	}
}

// IsNotWritable reports whether any byte of [off, off+n) is const.
func (s *Store) IsNotWritable(obj ObjID, off, n int64) bool {
	if len(s.notWritable) == 0 {
		return false // no const object exists: skip the per-byte lookups
	}
	for i := off; i < off+n; i++ {
		if _, ok := s.notWritable[Loc{Obj: obj, Off: i}]; ok {
			return true
		}
	}
	return false
}

// FreshUnknown returns a new indeterminate byte.
func (s *Store) FreshUnknown() Byte {
	s.unknownSeq++
	return Unknown{ID: s.unknownSeq}
}

// NumObjects reports how many objects (live or dead) the store tracks.
func (s *Store) NumObjects() int { return len(s.objs) }

// LiveBytes reports the total size of live objects.
func (s *Store) LiveBytes() int64 { return s.liveBytes }

// Kills reports how many object lifetimes have ended so far.
func (s *Store) Kills() int64 { return s.kills }
