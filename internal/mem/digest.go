package mem

// State hashing for the search driver's explored-state deduplication: the
// whole symbolic store folds into one 64-bit digest, so two runs that
// reached the same memory state at a choice point can share the subtree
// below it instead of exploring it twice. The digest is a heuristic
// identity (collisions are possible, if unlikely), which is why the search
// treats deduplication as an opt-in accelerator, never a soundness
// mechanism.

// Hash-mixing primitives (splitmix64-style finalization): strong enough
// avalanche that per-byte folding doesn't cluster, and far cheaper than a
// cryptographic hash on the per-choice-point path.

// HashSeed is the canonical starting value for the digest fold.
const HashSeed uint64 = 0x9E3779B97F4A7C15

// HashMix folds v into h.
func HashMix(h, v uint64) uint64 {
	h ^= v + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
	h *= 0xBF58476D1CE4E5B9
	return h ^ (h >> 27)
}

// HashString folds s into h.
func HashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = HashMix(h, uint64(s[i]))
	}
	return HashMix(h, uint64(len(s)))
}

// digestByte folds one symbolic byte into h, tagged by representation so
// Concrete{0}, Unknown{0}, and a pointer fragment can never collide
// structurally.
func digestByte(h uint64, b Byte) uint64 {
	switch b := b.(type) {
	case Concrete:
		return HashMix(h, 1<<56|uint64(b.B))
	case PtrFrag:
		h = HashMix(h, 2<<56|uint64(b.Idx))
		h = HashMix(h, uint64(b.P.Base))
		return HashMix(h, uint64(b.P.Off))
	case Unknown:
		return HashMix(h, 3<<56|uint64(b.ID))
	default:
		return HashMix(h, 4<<56)
	}
}

// Digest folds the entire store — every object's kind, size, liveness, and
// byte contents, in allocation order — into h. Allocation order is part of
// the identity on purpose: object IDs are observable through pointer
// comparisons and synthetic addresses, so two stores that differ only in
// ID assignment are not interchangeable states.
func (s *Store) Digest(h uint64) uint64 {
	h = HashMix(h, uint64(len(s.objs)))
	for _, o := range s.objs {
		tag := uint64(o.Kind) << 8
		if o.Live {
			tag |= 1
		}
		h = HashMix(h, tag)
		h = HashMix(h, uint64(o.Size))
		for _, b := range o.Data {
			h = digestByte(h, b)
		}
	}
	return HashMix(h, uint64(s.unknownSeq))
}

// LocHash hashes one byte location, for order-independent set folds
// (sequence-point sets have no canonical iteration order).
func LocHash(l Loc) uint64 {
	return HashMix(HashMix(HashSeed, uint64(l.Obj)), uint64(l.Off))
}
