// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5), plus the per-tool cost comparison of §5.1.2. Run:
//
//	go test -bench=. -benchmem
//
// The rows/series each benchmark exercises are printed by the matching
// cmd/ubsuite and example programs; the benchmarks measure the cost of
// regenerating them.
package undefc_test

import (
	"context"
	"fmt"
	"testing"

	undefc "repro"
	"repro/internal/driver"
	"repro/internal/interp"
	"repro/internal/runner"
	"repro/internal/search"
	"repro/internal/suite"
	"repro/internal/tools"
)

// BenchmarkFigure2 regenerates the full Juliet-class comparison table
// (all four tools over every generated test).
func BenchmarkFigure2(b *testing.B) {
	s := suite.Juliet()
	ts := tools.All(tools.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig := runner.RunJuliet(s, ts)
		if fig.Overall["kcc"].Flagged == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure2Parallel regenerates the same table on the worker-pool
// executor with all CPUs, once per execution engine. Compare against
// BenchmarkFigure2 (the single-worker baseline): the §5.1.2 point is that
// the case×tool matrix is embarrassingly parallel once the frontend pass
// is shared. The tree/vm pair isolates the engines end-to-end — note each
// iteration uses a fresh compile cache, so the vm recompiles its bytecode
// per iteration (the serving path amortizes it; see BenchmarkInterpOnly
// for the steady-state engine comparison).
func BenchmarkFigure2Parallel(b *testing.B) {
	s := suite.Juliet()
	for _, engine := range []string{"tree", "vm"} {
		b.Run(engine, func(b *testing.B) {
			ts := tools.All(tools.Config{Engine: engine})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fig, err := runner.RunJulietOpts(s, ts, runner.Options{Engine: engine})
				if err != nil {
					b.Fatal(err)
				}
				if fig.Overall["kcc"].Flagged == 0 {
					b.Fatal("empty figure")
				}
			}
		})
	}
}

// BenchmarkFigure3 regenerates the own-suite static/dynamic comparison.
func BenchmarkFigure3(b *testing.B) {
	s := suite.Own()
	ts := tools.All(tools.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig := runner.RunOwn(s, ts)
		if fig.Dynamic["kcc"] == 0 {
			b.Fatal("empty figure")
		}
	}
}

// The per-tool cost comparison of §5.1.2 (the paper: Valgrind and the Value
// Analysis ≈0.5s per test, kcc 23s, CheckPointer 80s — the semantics-based
// tool pays for completeness). One representative Juliet test per run.
func benchmarkToolCost(b *testing.B, tool tools.Tool) {
	s := suite.Juliet()
	src, name := s.Cases[0].Source, s.Cases[0].Name
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := tool.Analyze(src, name+".c")
		if rep.Verdict == tools.Inconclusive {
			b.Fatalf("inconclusive: %s", rep.Detail)
		}
	}
}

func BenchmarkToolCostKCC(b *testing.B)      { benchmarkToolCost(b, tools.KCC(tools.Config{})) }
func BenchmarkToolCostValgrind(b *testing.B) { benchmarkToolCost(b, tools.Memcheck(tools.Config{})) }
func BenchmarkToolCostCheckPointer(b *testing.B) {
	benchmarkToolCost(b, tools.CheckPointer(tools.Config{}))
}
func BenchmarkToolCostValueAnalysis(b *testing.B) {
	benchmarkToolCost(b, tools.ValueAnalysis(tools.Config{}))
}

// BenchmarkOrderSearch is the §2.5.2 experiment: exhaustively exploring the
// evaluation orders of the setDenom program.
func BenchmarkOrderSearch(b *testing.B) {
	prog, err := undefc.Compile(`
int d = 5;
int setDenom(int x){ return d = x; }
int main(void) { return (10/d) + setDenom(0); }
`, "setdenom.c", undefc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := search.Explore(context.Background(), prog, search.Options{})
		if res.UB() == nil {
			b.Fatal("search missed the division by zero")
		}
	}
}

// BenchmarkTortureSuite measures the positive semantics: executing every
// defined regression program (the stand-in for the GCC torture tests).
func BenchmarkTortureSuite(b *testing.B) {
	cases := suite.Torture()
	progs := make([]*undefc.Program, len(cases))
	for i, tc := range cases {
		p, err := undefc.Compile(tc.Source, tc.Name+".c", undefc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		progs[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, p := range progs {
			res := undefc.Run(p, undefc.Options{})
			if res.UB != nil || res.Err != nil {
				b.Fatalf("%s: %v %v", cases[j].Name, res.UB, res.Err)
			}
		}
	}
}

// BenchmarkCompile measures frontend throughput (preprocess + parse +
// typecheck) on a representative program.
func BenchmarkCompile(b *testing.B) {
	src := suite.Torture()[3].Source // the linked-list program
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := undefc.Compile(src, "bench.c", undefc.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileCache measures the two paths through the shared compile
// cache: "miss" is a real frontend pass plus insertion (every key fresh),
// "hit" returns the already-compiled immutable program.
func BenchmarkCompileCache(b *testing.B) {
	src := suite.Torture()[3].Source // the linked-list program
	b.Run("miss", func(b *testing.B) {
		c := driver.NewCache()
		for i := 0; i < b.N; i++ {
			// A unique define per iteration makes every lookup a miss.
			_, err := c.Compile(src, "bench.c", driver.Options{Defines: []string{fmt.Sprintf("I=%d", i)}})
			if err != nil {
				b.Fatal(err)
			}
		}
		if st := c.Stats(); st.Hits != 0 || st.Misses != int64(b.N) {
			b.Fatalf("stats = %+v, want all misses", st)
		}
	})
	b.Run("hit", func(b *testing.B) {
		c := driver.NewCache()
		if _, err := c.Compile(src, "bench.c", driver.Options{}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Compile(src, "bench.c", driver.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		if st := c.Stats(); st.Misses != 1 || st.Hits != int64(b.N) {
			b.Fatalf("stats = %+v, want 1 miss and all hits", st)
		}
	})
}

// BenchmarkDetectUnsequenced measures the cost of one end-to-end detection
// of the paper's flagship example (the §3.2 transcript).
func BenchmarkDetectUnsequenced(b *testing.B) {
	src := `
int main(void){
	int x = 0;
	return (x = 1) + (x = 2);
}
`
	for i := 0; i < b.N; i++ {
		res := undefc.RunSource(src, "unseq.c", undefc.Options{})
		if res.UB == nil {
			b.Fatal("missed")
		}
	}
}

// BenchmarkConfigTree exercises the Figure-1 configuration rendering.
func BenchmarkConfigTree(b *testing.B) {
	prog, err := undefc.Compile("int g; int main(void){ return g; }", "c.c", undefc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	in := interp.New(prog, interp.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if in.ConfigTree().Render() == "" {
			b.Fatal("empty tree")
		}
	}
}

// BenchmarkCatalog measures the §5.2.1 classification tally.
func BenchmarkCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if runner.CatalogSummary() == "" {
			b.Fatal("empty")
		}
	}
}

// BenchmarkInterpSieve measures raw interpretation speed on a compute-bound
// program (the ablation baseline for profile-check overhead).
func BenchmarkInterpSieve(b *testing.B) {
	prog, err := undefc.Compile(suite.Torture()[1].Source, "sieve.c", undefc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := undefc.Run(prog, undefc.Options{})
		if res.UB != nil || res.Err != nil {
			b.Fatal(res.UB, res.Err)
		}
	}
}

// BenchmarkInterpOnly isolates pure execution speed on a compute-bound
// program: the translation unit is compiled once outside the timer (and,
// for the vm, its closure code on the warm run), so each iteration
// measures only the engine's own dispatch. The tree/vm ratio here is the
// bytecode VM's headline interp speedup (EXPERIMENTS.md).
func BenchmarkInterpOnly(b *testing.B) {
	prog, err := undefc.Compile(suite.Torture()[1].Source, "sieve.c", undefc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, engine := range []string{"tree", "vm"} {
		b.Run(engine, func(b *testing.B) {
			// Warm run: populates the vm's compiled-code cache (a no-op for
			// the tree walker) and sanity-checks the program.
			if res := interp.Run(prog, interp.Options{Engine: engine}); res.UB != nil || res.Err != nil {
				b.Fatal(res.UB, res.Err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := interp.Run(prog, interp.Options{Engine: engine})
				if res.UB != nil || res.Err != nil {
					b.Fatal(res.UB, res.Err)
				}
			}
		})
	}
}

// BenchmarkProfileOverhead compares the full kcc profile against the
// reduced memcheck profile on the same program: the cost of the paper's
// §4.2 bookkeeping (sequence sets, const sets, alias checks).
func BenchmarkProfileOverhead(b *testing.B) {
	prog, err := undefc.Compile(suite.Torture()[1].Source, "sieve.c", undefc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("kcc-full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			interp.Run(prog, interp.Options{Profile: interp.KCCProfile()})
		}
	})
	b.Run("memcheck-reduced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			interp.Run(prog, interp.Options{Profile: interp.MemcheckProfile()})
		}
	})
}
