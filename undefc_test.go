package undefc_test

import (
	"strings"
	"testing"

	undefc "repro"
	"repro/internal/ctypes"
	"repro/internal/interp"
)

func TestFacadeRunSource(t *testing.T) {
	res := undefc.RunSource(`
#include <stdio.h>
int main(void) { printf("hi\n"); return 3; }
`, "f.c", undefc.Options{})
	if res.UB != nil || res.Err != nil {
		t.Fatalf("ub=%v err=%v", res.UB, res.Err)
	}
	if res.ExitCode != 3 || res.Output != "hi\n" {
		t.Errorf("exit=%d output=%q", res.ExitCode, res.Output)
	}
}

func TestFacadeCompileThenRun(t *testing.T) {
	prog, err := undefc.Compile("int main(void){ return 7; }", "c.c", undefc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A compiled program can run repeatedly (fresh memory each time).
	for i := 0; i < 3; i++ {
		res := undefc.Run(prog, undefc.Options{})
		if res.ExitCode != 7 || res.UB != nil {
			t.Fatalf("run %d: exit=%d ub=%v", i, res.ExitCode, res.UB)
		}
	}
}

func TestFacadeReportsStaticUBFirst(t *testing.T) {
	res := undefc.RunSource("int a[0]; int main(void){ return 0; }", "s.c", undefc.Options{})
	if res.UB == nil || !res.UB.Behavior.Static {
		t.Errorf("expected a static UB verdict, got %v", res.UB)
	}
}

func TestFacadeCompileError(t *testing.T) {
	res := undefc.RunSource("int main(void { return 0; }", "bad.c", undefc.Options{})
	if res.Err == nil {
		t.Error("expected a compile error")
	}
	if res.UB != nil {
		t.Error("compile errors are not UB verdicts")
	}
}

func TestFacadeModelOption(t *testing.T) {
	src := "int main(void){ return (int)sizeof(long); }"
	if res := undefc.RunSource(src, "m.c", undefc.Options{}); res.ExitCode != 8 {
		t.Errorf("LP64 long = %d", res.ExitCode)
	}
	res := undefc.RunSource(src, "m.c", undefc.Options{Model: ctypes.ILP32()})
	if res.ExitCode != 4 {
		t.Errorf("ILP32 long = %d", res.ExitCode)
	}
}

func TestFacadeDefines(t *testing.T) {
	res := undefc.RunSource(`
#ifdef FAST
int main(void){ return 1; }
#else
int main(void){ return 2; }
#endif
`, "d.c", undefc.Options{Defines: []string{"FAST"}})
	if res.ExitCode != 1 {
		t.Errorf("exit = %d, want 1", res.ExitCode)
	}
}

func TestFacadeExecOptions(t *testing.T) {
	var sb strings.Builder
	res := undefc.RunSource(`
#include <stdio.h>
int main(void){ printf("to writer\n"); return 0; }
`, "w.c", undefc.Options{Exec: interp.Options{Out: &sb}})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if sb.String() != "to writer\n" {
		t.Errorf("writer got %q", sb.String())
	}
	if res.Output != "" {
		t.Errorf("captured output should be empty when Out is set, got %q", res.Output)
	}
}

func TestFacadeCatalog(t *testing.T) {
	cat := undefc.Catalog()
	if len(cat) != 221 {
		t.Errorf("catalog has %d entries, want 221", len(cat))
	}
	// The paper's flagship error code must stay stable.
	if cat[15].Code != 16 || !strings.Contains(cat[15].Desc, "nsequenced") {
		t.Errorf("entry 16 = %v", cat[15])
	}
}

func TestFacadeKCCTranscript(t *testing.T) {
	// The README's front-page example, end to end.
	res := undefc.RunSource(`int main(void){
    int x = 0;
    return (x = 1) + (x = 2);
}`, "unseq.c", undefc.Options{})
	if res.UB == nil {
		t.Fatal("missed the unsequenced side effect")
	}
	rep := res.UB.Report()
	for _, want := range []string{
		"ERROR! KCC encountered an error.",
		"Error: 00016",
		"Function: main",
		"File: unseq.c",
		"Line: 3",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
