// Command ubsuite regenerates the paper's evaluation tables:
//
//	ubsuite -suite juliet   # Figure 2: the Juliet-style class table
//	ubsuite -suite own      # Figure 3: static/dynamic averages
//	ubsuite -suite torture  # positive-semantics regression (pass rate)
//	ubsuite -catalog        # §5.2.1 classification counts
//
// Suite runs execute the case×tool matrix on a worker pool with a shared
// compile cache; -j sets the worker count (default: all CPUs). -engine
// selects the execution engine (tree, the reference walker, or vm, the
// pre-compiled closure code — identical verdicts, faster).
//
// Observability:
//
//	-metrics     collect execution metrics and print a per-tool summary
//	-json        emit the canonical undefc.report/v1 report (implies -metrics)
//	-trace-out f write the run's span forest (cell → compile → interp per
//	             matrix cell) as Chrome trace-event JSON to f
//	-flight N    per-analysis flight-recorder ring (-1 auto: armed when
//	             -inject is; 0 off); quarantined cells carry their last N
//	             events in the failure manifest
//	-coverage    run every suite (juliet, own, torture), then print the UB
//	             check-site coverage ledger: per-behavior evaluated/fired
//	             counters and the registered behaviors that never fired
//
// Fault containment:
//
//	-case-timeout d  per-cell watchdog (e.g. 5s); expiry = "timeout" verdict
//	-inject spec     deterministic fault injection, e.g.
//	                 'interp.step=panic*1~CWE457' (see internal/fault)
//	-inject-seed n   seed for probabilistic injection rules
//	-strict          exit non-zero when the run has failures (contained
//	                 panics, timeouts, cancellations); the default is to
//	                 complete with partial results and report them
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/suite"
	"repro/internal/tools"

	undefc "repro"
)

func main() {
	suiteFlag := flag.String("suite", "juliet", "suite to run: juliet, own, or torture")
	engineFlag := flag.String("engine", "", "execution engine: tree (default) or vm")
	catalog := flag.Bool("catalog", false, "print the §5.2.1 classification counts")
	timing := flag.Bool("time", true, "include per-tool timing")
	jobs := flag.Int("j", 0, "parallel workers for the case×tool matrix (0 = GOMAXPROCS)")
	metricsFlag := flag.Bool("metrics", false, "collect execution metrics and print a per-tool summary")
	jsonFlag := flag.Bool("json", false, "emit the canonical undefc.report/v1 JSON report (implies -metrics)")
	caseTimeout := flag.Duration("case-timeout", 0, "per-case watchdog; an expired cell reports a timeout verdict")
	injectSpec := flag.String("inject", "", "fault-injection rules: site=kind[:arg][*count][@after][~match][%prob],...")
	injectSeed := flag.Uint64("inject-seed", 1, "seed for probabilistic injection rules")
	strict := flag.Bool("strict", false, "exit non-zero when the run recorded failures")
	traceOut := flag.String("trace-out", "", "write the run's span forest as Chrome trace-event JSON to this file")
	flight := flag.Int("flight", -1, "flight-recorder events per analysis (-1 = auto, 0 = off)")
	coverageFlag := flag.Bool("coverage", false, "run every suite (juliet, own, torture) and print the UB check-site coverage ledger")
	flag.Parse()

	if *catalog {
		fmt.Println(runner.CatalogSummary())
		return
	}

	var injector *fault.Injector
	if *injectSpec != "" {
		rules, err := fault.ParseSpec(*injectSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ubsuite: -inject: %v\n", err)
			os.Exit(2)
		}
		injector = fault.NewInjector(*injectSeed, rules...)
	}

	// -flight auto (-1) arms the recorder only when faults can actually
	// fire; a fault-free run has no post-mortems to attach trails to.
	cfgFlight := *flight
	if cfgFlight < 0 {
		cfgFlight = 0
		if injector != nil {
			cfgFlight = obs.DefaultFlightEvents
		}
	}

	collect := *jsonFlag || *metricsFlag
	cfg := tools.Config{Engine: *engineFlag, Metrics: collect, Injector: injector, Flight: cfgFlight}
	opts := runner.Options{Parallelism: *jobs, CaseTimeout: *caseTimeout, Injector: injector, Engine: *engineFlag}

	if *coverageFlag {
		os.Exit(runCoverage(cfg, opts, *engineFlag))
	}

	// -trace-out installs a span collector on the run context; every matrix
	// cell then records its cell → compile → interp spans, and finishTrace
	// writes the forest as Chrome trace-event JSON. Called on every exit
	// path of the matrix suites (idempotent; a no-op when tracing is off).
	finishTrace := func() {}
	if *traceOut != "" {
		buf := &obs.SpanBuffer{}
		ctx, _ := obs.WithTrace(context.Background(), buf)
		ctx, root := obs.StartSpan(ctx, "suite")
		root.SetAttr("suite", *suiteFlag)
		opts.Context = ctx
		done := false
		finishTrace = func() {
			if done {
				return
			}
			done = true
			root.End()
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ubsuite: -trace-out: %v\n", err)
				return
			}
			spans := buf.Spans()
			if err := obs.WriteChromeTrace(f, spans); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "ubsuite: -trace-out: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "ubsuite: wrote %d spans to %s\n", len(spans), *traceOut)
		}
	}
	switch *suiteFlag {
	case "juliet":
		s := suite.Juliet()
		ts := tools.All(cfg)
		m, err := runner.RunMatrix(s, ts, opts)
		if err != nil {
			finishTrace()
			fmt.Fprintf(os.Stderr, "ubsuite: %v\n", err)
			os.Exit(1)
		}
		finishTrace()
		if *jsonFlag {
			if err := runner.WriteJSON(os.Stdout, runner.SuiteReportFrom(s, ts, m)); err != nil {
				fmt.Fprintf(os.Stderr, "ubsuite: %v\n", err)
				os.Exit(1)
			}
			reportFailures(m, *strict)
			return
		}
		fmt.Printf("generated %d test cases (%d undefined + %d defined controls)\n\n",
			len(s.Cases), s.BadCount(), len(s.Cases)-s.BadCount())
		fig := runner.Figure2From(s, ts, m)
		out := fig.Render()
		if !*timing {
			out = stripTiming(out)
		}
		fmt.Print(out)
		if *metricsFlag {
			fmt.Printf("\n%s", fig.RenderMetrics())
		}
		reportFailures(m, *strict)
	case "own":
		s := suite.Own()
		ts := tools.All(cfg)
		m, err := runner.RunMatrix(s, ts, opts)
		if err != nil {
			finishTrace()
			fmt.Fprintf(os.Stderr, "ubsuite: %v\n", err)
			os.Exit(1)
		}
		finishTrace()
		if *jsonFlag {
			if err := runner.WriteJSON(os.Stdout, runner.SuiteReportFrom(s, ts, m)); err != nil {
				fmt.Fprintf(os.Stderr, "ubsuite: %v\n", err)
				os.Exit(1)
			}
			reportFailures(m, *strict)
			return
		}
		fmt.Printf("generated %d test cases covering %d behaviors (%d undefined + %d defined controls)\n\n",
			len(s.Cases), suite.Behaviors(s), s.BadCount(), len(s.Cases)-s.BadCount())
		fig := runner.Figure3From(s, ts, m)
		fmt.Print(fig.Render())
		if *metricsFlag {
			// Figure 3 has no per-tool metrics view; reuse the Figure-2
			// aggregation over the same matrix for the footer.
			fmt.Printf("\n%s", runner.Figure2From(s, ts, m).RenderMetrics())
		}
		reportFailures(m, *strict)
	case "torture":
		pass, fail := 0, 0
		for _, tc := range suite.Torture() {
			res := undefc.RunSource(tc.Source, tc.Name+".c",
				undefc.Options{Exec: interp.Options{Engine: *engineFlag}})
			if res.Err == nil && res.UB == nil &&
				res.ExitCode == tc.ExitCode && res.Output == tc.Output {
				pass++
			} else {
				fail++
				fmt.Printf("FAIL %s: ub=%v err=%v exit=%d\n", tc.Name, res.UB, res.Err, res.ExitCode)
			}
		}
		total := pass + fail
		fmt.Printf("torture-lite: %d/%d defined programs pass (%.1f%%)\n",
			pass, total, 100*float64(pass)/float64(total))
		if fail > 0 {
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "ubsuite: unknown suite %q\n", *suiteFlag)
		os.Exit(2)
	}
}

// runCoverage runs the full case corpus — the juliet and own matrices
// under every tool, then the torture-lite positives — and prints the UB
// check-site coverage ledger the runs accumulated. Counters are
// order-independent atomic sums and the render is code-sorted, so the
// report is byte-identical across -j values and engines.
func runCoverage(cfg tools.Config, opts runner.Options, engine string) int {
	obs.ResetCoverage()
	cases := 0
	for _, s := range []*suite.Suite{suite.Juliet(), suite.Own()} {
		if _, err := runner.RunMatrix(s, tools.All(cfg), opts); err != nil {
			fmt.Fprintf(os.Stderr, "ubsuite: -coverage: %v\n", err)
			return 1
		}
		cases += len(s.Cases)
	}
	for _, tc := range suite.Torture() {
		undefc.RunSource(tc.Source, tc.Name+".c",
			undefc.Options{Exec: interp.Options{Engine: engine}})
		cases++
	}
	fmt.Printf("coverage over %d cases (juliet + own matrices, torture-lite)\n\n", cases)
	fmt.Print(runner.CoverageReport(obs.CoverageSnapshot()))
	return 0
}

// reportFailures prints the run's crash manifest to stderr. The default
// contract is graceful degradation — partial results with failures
// reported, exit 0 — so CI pipelines only fail on faults when they opt in
// with -strict.
func reportFailures(m *runner.MatrixResult, strict bool) {
	if len(m.Failures) == 0 && m.Skipped == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "ubsuite: %d failed cell(s), %d skipped, %d retried\n",
		len(m.Failures), m.Skipped, m.Retried)
	for _, f := range m.Failures {
		fmt.Fprintf(os.Stderr, "  %s × %s: %s (%s)\n", f.Case, f.Tool, f.Verdict, f.Detail)
	}
	if strict {
		os.Exit(1)
	}
}

func stripTiming(s string) string {
	var out []byte
	for _, line := range splitLines(s) {
		if len(line) >= 9 && line[:9] == "Mean time" {
			continue
		}
		if len(line) >= 8 && line[:8] == "Frontend" {
			continue
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	return string(out)
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
