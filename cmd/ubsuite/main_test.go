package main

import (
	"encoding/json"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/driver"
	"repro/internal/interp"
	"repro/internal/runner"
	"repro/internal/tools"
)

// TestContainmentGate is the make-check gate for the fault-containment
// layer: for every registered fault site, a panic injected into a full
// suite run must leave the process exit code 0 (graceful degradation is
// the default contract) with the failure recorded in the JSON report; the
// same run under -strict must exit non-zero.
func TestContainmentGate(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the ubsuite binary")
	}
	bin := filepath.Join(t.TempDir(), "ubsuite")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	sites := []string{
		driver.SiteCompile,
		tools.SiteAnalyze,
		interp.SiteStep,
		runner.SiteAnalyze,
	}
	for _, site := range sites {
		t.Run(site, func(t *testing.T) {
			cmd := exec.Command(bin, "-suite", "juliet", "-json", "-inject", site+"=panic*1")
			stdout, err := cmd.Output()
			if err != nil {
				t.Fatalf("exit status = %v, want 0: the suite must survive a panic at %s", err, site)
			}
			var rep runner.SuiteReport
			if err := json.Unmarshal(stdout, &rep); err != nil {
				t.Fatalf("report does not parse: %v", err)
			}
			if rep.Schema != runner.Schema {
				t.Fatalf("schema = %q", rep.Schema)
			}
			if len(rep.Failures) == 0 {
				t.Fatal("no failure recorded in the JSON report")
			}
			f := rep.Failures[0]
			if f.Verdict != tools.InternalError || f.Stack == "" {
				t.Errorf("failure = %+v, want internal-error with captured stack", f)
			}
			// Exactly one cell was hit; every other cell carries a verdict.
			var internal int
			for _, c := range rep.Cases {
				for _, r := range c.Results {
					if r.Verdict == tools.InternalError {
						internal++
					}
				}
			}
			if internal != 1 {
				t.Errorf("%d internal-error cells, want 1 (*1 caps the injection)", internal)
			}
		})
	}

	// -strict turns recorded failures into a non-zero exit.
	cmd := exec.Command(bin, "-suite", "juliet", "-json", "-strict",
		"-inject", runner.SiteAnalyze+"=panic*1")
	if err := cmd.Run(); err == nil {
		t.Error("-strict run with an injected panic exited 0, want non-zero")
	}
}
