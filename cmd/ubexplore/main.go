// Command ubexplore searches the unspecified evaluation orders of a C
// program for undefined behavior (paper §2.5.2): a program may be defined
// under one compiler's order and undefined under another's — kcc-style
// checking of a single order is not enough.
//
//	$ ubexplore setdenom.c
//	2 distinct behaviors over 3 executions:
//	  behavior 1: exit 2
//	  behavior 2: UB 00039 division by zero
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/driver"
	"repro/internal/search"
)

func main() {
	maxRuns := flag.Int("max-runs", 5000, "maximum executions to try")
	stopFirst := flag.Bool("stop-at-first-ub", false, "stop as soon as any UB is found")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ubexplore [flags] file.c")
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ubexplore: %v\n", err)
		os.Exit(1)
	}
	prog, err := driver.Compile(string(src), file, driver.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ubexplore: %v\n", err)
		os.Exit(1)
	}
	res := search.Explore(prog, search.Options{MaxRuns: *maxRuns, StopAtFirstUB: *stopFirst})
	fmt.Printf("%d distinct behaviors over %d executions (exhausted: %v):\n",
		len(res.Outcomes), res.Runs, res.Exhausted)
	for i, o := range res.Outcomes {
		switch {
		case o.UB != nil:
			fmt.Printf("  behavior %d: UB %05d [C11 §%s] %s\n",
				i+1, o.UB.Behavior.Code, o.UB.Behavior.Section, o.UB.Msg)
		case o.Err != nil:
			fmt.Printf("  behavior %d: error: %v\n", i+1, o.Err)
		default:
			fmt.Printf("  behavior %d: exit %d", i+1, o.ExitCode)
			if o.Output != "" {
				fmt.Printf(" output %q", o.Output)
			}
			fmt.Println()
		}
	}
	if res.UB() != nil {
		os.Exit(1)
	}
}
