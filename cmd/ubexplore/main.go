// Command ubexplore searches the unspecified evaluation orders of a C
// program for undefined behavior (paper §2.5.2): a program may be defined
// under one compiler's order and undefined under another's — kcc-style
// checking of a single order is not enough.
//
//	$ ubexplore setdenom.c
//	2 distinct behaviors over 3 executions:
//	  behavior 1: exit 2
//	  behavior 2: UB 00039 division by zero
//
// The search fans evaluation-order prefixes out over -j workers and, with
// -por=on (the default), prunes sibling orders whose operands provably
// commute — partial-order reduction, which lets deep expression nests
// that would exhaust any per-order budget finish exhaustively.
//
// With -json the result is the same undefc.api/v1 explore document the
// undefd service serves, so scripts can consume either interchangeably;
// -stream instead emits the service's NDJSON frames (header, one line per
// distinct behavior as it is discovered, trailer) on stdout. -stats adds
// the search accounting to the text form. -timeout bounds the whole
// search; a timed-out search reports the behaviors found so far and
// exits 3.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/driver"
	"repro/internal/runner"
	"repro/internal/search"
	"repro/internal/server"
)

func main() {
	maxRuns := flag.Int("max-runs", 5000, "maximum executions to try")
	engine := flag.String("engine", "", "execution engine: tree (default) or vm")
	stopFirst := flag.Bool("stop-at-first-ub", false, "stop as soon as any UB is found")
	par := flag.Int("j", 0, "parallel search workers (0 = GOMAXPROCS)")
	por := flag.String("por", "on", "partial-order reduction: on or off")
	dedup := flag.String("dedup", "off", "explored-state deduplication: on or off")
	timeout := flag.Duration("timeout", 0, "bound the whole search (0 = no limit)")
	asJSON := flag.Bool("json", false, "emit the undefc.api/v1 explore document instead of text")
	stream := flag.Bool("stream", false, "emit the undefc.api/v1 NDJSON explore frames on stdout")
	stats := flag.Bool("stats", false, "append the search accounting to the text report")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ubexplore [flags] file.c")
		os.Exit(2)
	}
	porOn, err := onOff("por", *por)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ubexplore: %v\n", err)
		os.Exit(2)
	}
	dedupOn, err := onOff("dedup", *dedup)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ubexplore: %v\n", err)
		os.Exit(2)
	}
	if *asJSON && *stream {
		fmt.Fprintln(os.Stderr, "ubexplore: -json and -stream are mutually exclusive")
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ubexplore: %v\n", err)
		os.Exit(1)
	}
	prog, err := driver.Compile(string(src), file, driver.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ubexplore: %v\n", err)
		os.Exit(1)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := search.Options{
		MaxRuns:       *maxRuns,
		StopAtFirstUB: *stopFirst,
		Engine:        *engine,
		Parallelism:   *par,
		POR:           porOn,
		Dedup:         dedupOn,
	}

	var enc *json.Encoder
	if *stream {
		enc = json.NewEncoder(os.Stdout)
		enc.Encode(server.ExploreHeader{
			Schema: server.APISchema, File: file,
			MaxRuns: *maxRuns, Parallelism: *par, POR: porOn, Dedup: dedupOn,
		})
		opts.OnOutcome = func(o search.Outcome, st search.Stats) {
			enc.Encode(server.ExploreOutcomeLine{
				ExploreOutcome: server.ExploreOutcomeFrom(o),
				Runs:           st.OrdersExplored,
			})
		}
	}

	res := search.Explore(ctx, prog, opts)
	timedOut := ctx.Err() != nil

	switch {
	case *stream:
		enc.Encode(server.ExploreTrailer{
			Done:          true,
			Runs:          res.Runs,
			Exhausted:     res.Exhausted,
			Deterministic: res.Deterministic(),
			Outcomes:      len(res.Outcomes),
			Stats:         &res.Stats,
		})
	case *asJSON:
		if err := runner.WriteJSON(os.Stdout, server.ExploreResponseFrom(file, res)); err != nil {
			fmt.Fprintf(os.Stderr, "ubexplore: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Printf("%d distinct behaviors over %d executions (exhausted: %v):\n",
			len(res.Outcomes), res.Runs, res.Exhausted)
		for i, o := range res.Outcomes {
			switch {
			case o.UB != nil:
				fmt.Printf("  behavior %d: UB %05d [C11 §%s] %s\n",
					i+1, o.UB.Behavior.Code, o.UB.Behavior.Section, o.UB.Msg)
			case o.Err != nil:
				fmt.Printf("  behavior %d: error: %v\n", i+1, o.Err)
			default:
				fmt.Printf("  behavior %d: exit %d", i+1, o.ExitCode)
				if o.Output != "" {
					fmt.Printf(" output %q", o.Output)
				}
				fmt.Println()
			}
		}
		if *stats {
			fmt.Printf("stats: %d orders explored, %d pruned (POR), %d states deduped, %d workers, %.1fms\n",
				res.Stats.OrdersExplored, res.Stats.OrdersPruned, res.Stats.StatesDeduped,
				res.Stats.Parallelism, float64(res.Stats.WallNS)/1e6)
		}
		if timedOut {
			fmt.Printf("  search timed out after %v; behaviors above are a lower bound\n", *timeout)
		}
	}
	switch {
	case res.UB() != nil:
		os.Exit(1)
	case timedOut:
		os.Exit(3)
	}
}

// onOff parses the on/off switch flags, mirroring the service's request
// fields so the CLI and the API stay one vocabulary.
func onOff(name, val string) (bool, error) {
	switch val {
	case "on":
		return true, nil
	case "off":
		return false, nil
	}
	return false, fmt.Errorf("-%s: want on or off, got %q", name, val)
}
