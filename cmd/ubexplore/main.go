// Command ubexplore searches the unspecified evaluation orders of a C
// program for undefined behavior (paper §2.5.2): a program may be defined
// under one compiler's order and undefined under another's — kcc-style
// checking of a single order is not enough.
//
//	$ ubexplore setdenom.c
//	2 distinct behaviors over 3 executions:
//	  behavior 1: exit 2
//	  behavior 2: UB 00039 division by zero
//
// With -json the result is the same undefc.api/v1 explore document the
// undefd service serves, so scripts can consume either interchangeably.
// -timeout bounds the whole search; a timed-out search reports the
// behaviors found so far and exits 3.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/driver"
	"repro/internal/runner"
	"repro/internal/search"
	"repro/internal/server"
)

func main() {
	maxRuns := flag.Int("max-runs", 5000, "maximum executions to try")
	engine := flag.String("engine", "", "execution engine: tree (default) or vm")
	stopFirst := flag.Bool("stop-at-first-ub", false, "stop as soon as any UB is found")
	timeout := flag.Duration("timeout", 0, "bound the whole search (0 = no limit)")
	asJSON := flag.Bool("json", false, "emit the undefc.api/v1 explore document instead of text")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ubexplore [flags] file.c")
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ubexplore: %v\n", err)
		os.Exit(1)
	}
	prog, err := driver.Compile(string(src), file, driver.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ubexplore: %v\n", err)
		os.Exit(1)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res := search.Explore(prog, search.Options{
		MaxRuns:       *maxRuns,
		StopAtFirstUB: *stopFirst,
		Engine:        *engine,
		Context:       ctx,
	})
	timedOut := ctx.Err() != nil

	if *asJSON {
		if err := runner.WriteJSON(os.Stdout, server.ExploreResponseFrom(file, res)); err != nil {
			fmt.Fprintf(os.Stderr, "ubexplore: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("%d distinct behaviors over %d executions (exhausted: %v):\n",
			len(res.Outcomes), res.Runs, res.Exhausted)
		for i, o := range res.Outcomes {
			switch {
			case o.UB != nil:
				fmt.Printf("  behavior %d: UB %05d [C11 §%s] %s\n",
					i+1, o.UB.Behavior.Code, o.UB.Behavior.Section, o.UB.Msg)
			case o.Err != nil:
				fmt.Printf("  behavior %d: error: %v\n", i+1, o.Err)
			default:
				fmt.Printf("  behavior %d: exit %d", i+1, o.ExitCode)
				if o.Output != "" {
					fmt.Printf(" output %q", o.Output)
				}
				fmt.Println()
			}
		}
		if timedOut {
			fmt.Printf("  search timed out after %v; behaviors above are a lower bound\n", *timeout)
		}
	}
	switch {
	case res.UB() != nil:
		os.Exit(1)
	case timedOut:
		os.Exit(3)
	}
}
