// Command kcc mimics the paper's semantics-based C "compiler": it
// compiles a C file against the executable semantics and runs it,
// reporting undefined behavior in the format of §3.2:
//
//	$ kcc helloworld.c
//	Hello world
//
//	$ kcc unseq.c
//	ERROR! KCC encountered an error.
//	===============================================
//	Error: 00016
//	Description: Unsequenced side effect on scalar object ...
//
// Flags:
//
//	-model   LP64 (default), ILP32, or INT8 (§2.5.1's 8-byte-int model)
//	-search  explore all evaluation orders (§2.5.2) instead of one run
//	-print-config  print the configuration cell tree (Figure 1) and exit
//	-catalog print the undefined behavior catalog and exit
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ctypes"
	"repro/internal/driver"
	"repro/internal/interp"
	"repro/internal/runner"
	"repro/internal/search"
	"repro/internal/sema"
	"repro/internal/spec"
	"repro/internal/ub"
)

func main() {
	modelFlag := flag.String("model", "LP64", "implementation-defined model: LP64, ILP32, or INT8")
	searchFlag := flag.Bool("search", false, "search all evaluation orders (§2.5.2)")
	printConfig := flag.Bool("print-config", false, "print the configuration cell tree (Figure 1)")
	catalog := flag.Bool("catalog", false, "print the undefined behavior catalog")
	maxSteps := flag.Int64("max-steps", 0, "execution step budget (0 = default)")
	axioms := flag.Bool("axioms", false, "also enforce the §4.5.2 declarative axioms")
	flag.Parse()

	if *catalog {
		fmt.Println(runner.CatalogSummary())
		for _, b := range runner.SortedBehaviors() {
			fmt.Println(" ", b)
		}
		return
	}

	model := ctypes.LP64()
	switch *modelFlag {
	case "LP64":
	case "ILP32":
		model = ctypes.ILP32()
	case "INT8":
		model = ctypes.Int8()
	default:
		fmt.Fprintf(os.Stderr, "kcc: unknown model %q\n", *modelFlag)
		os.Exit(2)
	}

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: kcc [flags] file.c [args...]")
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kcc: %v\n", err)
		os.Exit(1)
	}

	prog, err := driver.Compile(string(src), file, driver.Options{Model: model})
	if err != nil {
		fmt.Fprintf(os.Stderr, "kcc: %v\n", err)
		os.Exit(1)
	}
	if len(prog.StaticUB) > 0 {
		// Translation-time detection: report and stop, as the standard
		// permits ("terminating a translation ... with the issuance of a
		// diagnostic message", §3.4.3).
		fmt.Print(prog.StaticUB[0].Report())
		os.Exit(1)
	}

	if *printConfig {
		in := interp.New(prog, interp.Options{})
		fmt.Println("Subset of the C configuration (Figure 1):")
		fmt.Print(in.ConfigTree().Render())
		return
	}

	if *searchFlag {
		runSearch(prog)
		return
	}

	opts := interp.Options{
		Out:      os.Stdout,
		MaxSteps: *maxSteps,
		Args:     flag.Args()[1:],
	}
	if *axioms {
		opts.Monitors = spec.Set{
			spec.NeverDerefNull(),
			spec.NeverDerefVoid(),
			spec.NoUnseqConflict(),
		}
	}
	res := interp.Run(prog, opts)
	if res.UB != nil {
		fmt.Print(res.UB.Report())
		os.Exit(1)
	}
	if res.Err != nil {
		fmt.Fprintf(os.Stderr, "kcc: %v\n", res.Err)
		os.Exit(1)
	}
	os.Exit(res.ExitCode)
}

func runSearch(prog *sema.Program) {
	res := search.Explore(prog, search.Options{MaxRuns: 5000})
	fmt.Printf("explored %d executions (exhausted: %v)\n", res.Runs, res.Exhausted)
	for i, o := range res.Outcomes {
		fmt.Printf("\n--- behavior %d (decision trace %v) ---\n", i+1, o.Trace)
		switch {
		case o.UB != nil:
			fmt.Print(o.UB.Report())
		case o.Err != nil:
			fmt.Printf("error: %v\n", o.Err)
		default:
			fmt.Printf("exit %d", o.ExitCode)
			if o.Output != "" {
				fmt.Printf(", output:\n%s", o.Output)
			}
			fmt.Println()
		}
	}
	if u := res.UB(); u != nil {
		fmt.Println("\nverdict: program has undefined behavior on some evaluation order")
		os.Exit(1)
	}
	fmt.Println("\nverdict: no undefined behavior found on explored orders")
	_ = ub.Catalog // keep the catalog linked for -catalog users
}
