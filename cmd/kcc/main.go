// Command kcc mimics the paper's semantics-based C "compiler": it
// compiles a C file against the executable semantics and runs it,
// reporting undefined behavior in the format of §3.2:
//
//	$ kcc helloworld.c
//	Hello world
//
//	$ kcc unseq.c
//	ERROR! KCC encountered an error.
//	===============================================
//	Error: 00016
//	Description: Unsequenced side effect on scalar object ...
//
// Flags:
//
//	-model   LP64 (default), ILP32, or INT8 (§2.5.1's 8-byte-int model)
//	-engine  execution engine: tree (the reference walker, default) or vm
//	         (pre-compiled closure code; identical verdicts, faster)
//	-search  explore all evaluation orders (§2.5.2) instead of one run
//	-print-config  print the configuration cell tree (Figure 1) and exit
//	-catalog print the undefined behavior catalog and exit
//	-batch   analyze every file argument and print one verdict per file
//	-j N     worker count for -batch (0 = all CPUs)
//	-trace   stream execution events (checks, memory ops, ...) to stderr
//	-trace-steps   include one trace line per interpreter step (noisy)
//	-json    emit the canonical undefc.report/v1 report instead of text
//	-timeout d     wall-clock watchdog per analysis (e.g. 5s); expiry is
//	               reported as a timeout verdict, not a hang
//	-trace-out f   write the analysis' span tree (compile → interp) as
//	               Chrome trace-event JSON to f; open it in
//	               chrome://tracing or https://ui.perfetto.dev
//	-coverage      after the run, print the UB check-site coverage ledger
//	               (which registered behaviors this run evaluated/fired)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/ctypes"
	"repro/internal/driver"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/search"
	"repro/internal/sema"
	"repro/internal/spec"
	"repro/internal/tools"
	"repro/internal/ub"
)

func main() {
	modelFlag := flag.String("model", "LP64", "implementation-defined model: LP64, ILP32, or INT8")
	engineFlag := flag.String("engine", "", "execution engine: tree (default) or vm")
	searchFlag := flag.Bool("search", false, "search all evaluation orders (§2.5.2)")
	printConfig := flag.Bool("print-config", false, "print the configuration cell tree (Figure 1)")
	catalog := flag.Bool("catalog", false, "print the undefined behavior catalog")
	maxSteps := flag.Int64("max-steps", 0, "execution step budget (0 = default)")
	axioms := flag.Bool("axioms", false, "also enforce the §4.5.2 declarative axioms")
	batch := flag.Bool("batch", false, "analyze every file argument, one verdict per file")
	jobs := flag.Int("j", 0, "parallel workers for -batch (0 = all CPUs)")
	traceFlag := flag.Bool("trace", false, "stream execution events to stderr")
	traceSteps := flag.Bool("trace-steps", false, "with -trace, include per-step events (noisy)")
	jsonFlag := flag.Bool("json", false, "emit the canonical undefc.report/v1 JSON report")
	timeout := flag.Duration("timeout", 0, "per-analysis wall-clock watchdog (0 = none)")
	traceOut := flag.String("trace-out", "", "write the span tree as Chrome trace-event JSON to this file")
	coverageFlag := flag.Bool("coverage", false, "after the run, print the UB check-site coverage ledger")
	flag.Parse()

	// The ledger goes to stderr so it composes with both the program's
	// stdout and the -json report body.
	printCoverage := func() {
		if *coverageFlag {
			fmt.Fprint(os.Stderr, runner.CoverageReport(obs.CoverageSnapshot()))
		}
	}

	if *catalog {
		fmt.Println(runner.CatalogSummary())
		for _, b := range runner.SortedBehaviors() {
			fmt.Println(" ", b)
		}
		return
	}

	model := ctypes.LP64()
	switch *modelFlag {
	case "LP64":
	case "ILP32":
		model = ctypes.ILP32()
	case "INT8":
		model = ctypes.Int8()
	default:
		fmt.Fprintf(os.Stderr, "kcc: unknown model %q\n", *modelFlag)
		os.Exit(2)
	}
	if !engineKnown(*engineFlag) {
		fmt.Fprintf(os.Stderr, "kcc: unknown engine %q (want one of %v)\n", *engineFlag, interp.Engines())
		os.Exit(2)
	}

	budget := interp.Budget{MaxSteps: *maxSteps}
	var tracer obs.Observer
	if *traceFlag || *traceSteps {
		tracer = &obs.Tracer{W: os.Stderr, Steps: *traceSteps}
	}

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: kcc [flags] file.c [args...]")
		os.Exit(2)
	}
	if *batch {
		code := runBatch(flag.Args(), model, *engineFlag, budget, *jobs, tracer, *jsonFlag, *timeout)
		printCoverage()
		os.Exit(code)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kcc: %v\n", err)
		os.Exit(1)
	}

	// ctx carries the span collector when -trace-out is set; finishTrace
	// ends the root span and writes the Chrome trace file. It must run
	// before any exit on a traced path (os.Exit skips defers).
	ctx, finishTrace := startTrace(*traceOut)

	if *jsonFlag {
		// The report path runs the kcc analysis tool (metrics on, program
		// output captured) and emits the canonical single-file report.
		kcc := tools.KCC(tools.Config{Model: model, Engine: *engineFlag, Budget: budget, Metrics: true, Observer: tracer, Timeout: *timeout})
		var rep tools.Report
		if *traceOut == "" {
			rep = kcc.Analyze(string(src), file)
		} else {
			// The traced equivalent of Analyze: compile under the "compile"
			// span, analyze under "interp", charge the frontend to the
			// report like compileAndDelegate does.
			cstart := time.Now()
			prog, cerr := driver.NewCache().CompileCtx(ctx, string(src), file, driver.Options{Model: model})
			compile := time.Since(cstart)
			if cerr != nil {
				rep = tools.Report{Verdict: tools.Inconclusive, Detail: "compile: " + cerr.Error(), CompileDuration: compile}
			} else {
				rep = kcc.AnalyzeProgram(ctx, prog, file)
				rep.CompileDuration = compile
			}
		}
		finishTrace()
		printCoverage()
		if err := runner.WriteJSON(os.Stdout, runner.FileReportFrom(file, kcc.Name(), rep)); err != nil {
			fmt.Fprintf(os.Stderr, "kcc: %v\n", err)
			os.Exit(1)
		}
		if rep.Verdict != tools.Accepted {
			os.Exit(1)
		}
		return
	}

	var prog *sema.Program
	if *traceOut == "" {
		prog, err = driver.Compile(string(src), file, driver.Options{Model: model})
	} else {
		prog, err = driver.NewCache().CompileCtx(ctx, string(src), file, driver.Options{Model: model})
	}
	if err != nil {
		finishTrace()
		fmt.Fprintf(os.Stderr, "kcc: %v\n", err)
		os.Exit(1)
	}
	if len(prog.StaticUB) > 0 {
		// Translation-time detection: report and stop, as the standard
		// permits ("terminating a translation ... with the issuance of a
		// diagnostic message", §3.4.3).
		fmt.Print(prog.StaticUB[0].Report())
		os.Exit(1)
	}

	if *printConfig {
		in := interp.New(prog, interp.Options{})
		fmt.Println("Subset of the C configuration (Figure 1):")
		fmt.Print(in.ConfigTree().Render())
		return
	}

	if *searchFlag {
		runSearch(prog, *engineFlag)
		return
	}

	opts := interp.Options{
		Engine:   *engineFlag,
		Out:      os.Stdout,
		Budget:   budget,
		Observer: tracer,
		Args:     flag.Args()[1:],
	}
	if *timeout > 0 {
		tctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts.Context = tctx
	}
	if *axioms {
		opts.Monitors = spec.Set{
			spec.NeverDerefNull(),
			spec.NeverDerefVoid(),
			spec.NoUnseqConflict(),
		}
	}
	_, rsp := obs.StartSpan(ctx, "interp")
	res := interp.Run(prog, opts)
	if rsp.Recording() {
		if res.UB != nil {
			rsp.SetAttr("ub", obs.CheckKey(res.UB.Behavior.Code))
		}
		rsp.End()
	}
	finishTrace()
	printCoverage()
	if res.UB != nil {
		fmt.Print(res.UB.Report())
		os.Exit(1)
	}
	if res.Err != nil {
		fmt.Fprintf(os.Stderr, "kcc: %v\n", res.Err)
		os.Exit(1)
	}
	os.Exit(res.ExitCode)
}

// startTrace arms span collection for -trace-out: the returned context
// carries the collector (plus a root "kcc" span), and the returned
// function — idempotent, safe to call on every exit path — ends the root
// and writes the collected tree as Chrome trace-event JSON.
func startTrace(path string) (context.Context, func()) {
	if path == "" {
		return context.Background(), func() {}
	}
	buf := &obs.SpanBuffer{}
	ctx, _ := obs.WithTrace(context.Background(), buf)
	ctx, root := obs.StartSpan(ctx, "kcc")
	done := false
	return ctx, func() {
		if done {
			return
		}
		done = true
		root.End()
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kcc: -trace-out: %v\n", err)
			return
		}
		defer f.Close()
		if err := obs.WriteChromeTrace(f, buf.Spans()); err != nil {
			fmt.Fprintf(os.Stderr, "kcc: -trace-out: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "kcc: wrote %d spans to %s\n", len(buf.Spans()), path)
	}
}

// runBatch analyzes every file on a worker pool sharing one compile
// cache (identical translation units are compiled once), printing one
// verdict line per file in argument order. Metrics are collected into
// per-worker shards (no cross-CPU contention) and merged at the end.
// Returns the exit code: 1 when any file is flagged, crashed,
// inconclusive, or unreadable.
// engineKnown reports whether name is a registered execution engine.
func engineKnown(name string) bool {
	if name == "" {
		return true
	}
	for _, e := range interp.Engines() {
		if e == name {
			return true
		}
	}
	return false
}

func runBatch(files []string, model *ctypes.Model, engine string, budget interp.Budget, jobs int, tracer obs.Observer, asJSON bool, timeout time.Duration) int {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	sharded := obs.NewSharded()
	cache := driver.NewCache()
	cache.SetObserver(sharded.Shard())
	reports := make([]tools.Report, len(files))
	ctx := context.Background()

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One tool (and one metrics shard) per worker: workers never
			// share a counter cache line.
			kcc := tools.KCC(tools.Config{Model: model, Engine: engine, Budget: budget,
				Observer: obs.Multi(tracer, sharded.Shard()), Timeout: timeout})
			for i := range work {
				src, err := os.ReadFile(files[i])
				if err != nil {
					reports[i] = tools.Report{Verdict: tools.Inconclusive, Detail: err.Error()}
					continue
				}
				prog, err := cache.Compile(string(src), files[i], driver.Options{Model: model})
				if err != nil {
					reports[i] = tools.Report{Verdict: tools.Inconclusive, Detail: err.Error()}
					continue
				}
				reports[i] = kcc.AnalyzeProgram(ctx, prog, files[i])
			}
		}()
	}
	for i := range files {
		work <- i
	}
	close(work)
	wg.Wait()

	if asJSON {
		out := struct {
			Schema  string              `json:"schema"`
			Files   []runner.ToolResult `json:"files"`
			Names   []string            `json:"names"`
			Metrics *obs.Snapshot       `json:"metrics"`
		}{Schema: runner.Schema, Metrics: sharded.Snapshot()}
		exit := 0
		for i, rep := range reports {
			out.Names = append(out.Names, files[i])
			out.Files = append(out.Files, runner.ToolResultFrom("kcc", rep))
			if rep.Verdict != tools.Accepted {
				exit = 1
			}
		}
		if err := runner.WriteJSON(os.Stdout, out); err != nil {
			fmt.Fprintf(os.Stderr, "kcc: %v\n", err)
			return 1
		}
		return exit
	}

	exit := 0
	flagged := 0
	for i, rep := range reports {
		switch rep.Verdict {
		case tools.Accepted:
			fmt.Printf("%s: ok (exit %d)\n", files[i], rep.ExitCode)
		case tools.Flagged:
			flagged++
			exit = 1
			fmt.Printf("%s: undefined — %s\n", files[i], rep.Detail)
		default:
			exit = 1
			fmt.Printf("%s: %s — %s\n", files[i], rep.Verdict, rep.Detail)
		}
	}
	st := cache.Stats()
	fmt.Printf("%d files, %d undefined (%d compiles, %d cache hits)\n",
		len(files), flagged, st.Misses, st.Hits)
	fmt.Printf("metrics: %s\n", sharded.Snapshot().Summary())
	return exit
}

func runSearch(prog *sema.Program, engine string) {
	res := search.Explore(context.Background(), prog, search.Options{MaxRuns: 5000, Engine: engine, POR: true})
	fmt.Printf("explored %d executions (exhausted: %v, %d orders pruned)\n",
		res.Runs, res.Exhausted, res.Stats.OrdersPruned)
	for i, o := range res.Outcomes {
		fmt.Printf("\n--- behavior %d (decision trace %v) ---\n", i+1, o.Trace)
		switch {
		case o.UB != nil:
			fmt.Print(o.UB.Report())
		case o.Err != nil:
			fmt.Printf("error: %v\n", o.Err)
		default:
			fmt.Printf("exit %d", o.ExitCode)
			if o.Output != "" {
				fmt.Printf(", output:\n%s", o.Output)
			}
			fmt.Println()
		}
	}
	if u := res.UB(); u != nil {
		fmt.Println("\nverdict: program has undefined behavior on some evaluation order")
		os.Exit(1)
	}
	fmt.Println("\nverdict: no undefined behavior found on explored orders")
	_ = ub.Catalog // keep the catalog linked for -catalog users
}
