// Cluster chaos mode (-cluster N): spawn N real undefd shard processes
// plus an in-process cluster router, drive the analyze workload through
// the router, SIGKILL -kill shards mid-load and restart them, then audit
// the serving invariants the cluster promises:
//
//   - zero client-visible crashes: every request got a structured answer
//     (a verdict, an honest 429, or — when every replica attempt failed
//     within the retry budget — a typed 503), never a transport error or
//     torn body
//   - exact counter agreement: the client-side verdict tally equals the
//     router's delivered counters, and each live shard's own verdict
//     counters equal the router's per-instance delivered counts — the
//     remainder is attributable, verdict for verdict, to the killed
//     incarnations
//   - every live shard's admission queue drained
//   - when a shard was killed and restarted, its breaker recorded the
//     full open → half-open → closed recovery cycle
//
// The shards are separate OS processes (undefbench re-execs itself with
// the hidden -shard-exec flag), so the kill is a real SIGKILL: no defers
// run, no counters flush, the TCP socket just dies — exactly the failure
// the router exists to absorb.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/suite"
)

// clusterOpts carries the -cluster run configuration.
type clusterOpts struct {
	shards     int
	kill       int
	conns      int
	dur        time.Duration
	dup        float64
	seed       int64
	injectSpec string
	injectSeed uint64
	asJSON     bool
}

// clusterReport is the machine-readable cluster-audit result (-json).
type clusterReport struct {
	report
	Shards    int `json:"shards"`
	Killed    int `json:"killed"`
	Restarted int `json:"restarted"`
	// RouterDelivered is the router's total delivered-verdict count;
	// DeadDelivered is the share attributed to killed incarnations.
	RouterDelivered int64 `json:"router_delivered"`
	DeadDelivered   int64 `json:"dead_delivered"`
	// InstanceMatch: every live shard's own verdict counters equal the
	// router's per-instance delivered counts. BreakerCycle: a killed
	// shard's breaker recorded open → half-open → closed. ZeroErrors:
	// no client-visible transport or malformed-body failures.
	InstanceMatch bool  `json:"instance_match"`
	BreakerCycle  bool  `json:"breaker_cycle"`
	ZeroErrors    bool  `json:"zero_errors"`
	Failovers     int64 `json:"failovers"`
	InjectedFails int64 `json:"injected_failures"`
	// Unavailable counts structured 503 refusals: requests whose every
	// replica attempt failed within the retry budget, answered with an
	// honest typed error body instead of a hang or a torn response.
	Unavailable int64 `json:"unavailable_503"`

	// Artifact-tier audit. ClusterFetches / ClusterCompiles split the
	// cluster's cache misses into artifact-served and frontend-compiled
	// (the fetch-vs-recompile ratio); RouterCoalesced counts forwards the
	// router held behind an identical in-flight key; RouterHints counts
	// forwards stamped with a directory hint. DiskFetches / PeerFetches /
	// ProbeRecompiles are the restarted shard's counter deltas over the
	// cold-restart probes, and ColdRestartOK is the gate: the SIGKILLed-
	// and-restarted shard answered its first repeat-key requests by
	// fetching (disk, then peer), never by recompiling. CoalesceOK gates
	// RouterCoalesced > 0 whenever the workload had duplicates to coalesce.
	ClusterFetches  int64 `json:"cluster_fetches"`
	ClusterCompiles int64 `json:"cluster_compiles"`
	RouterCoalesced int64 `json:"router_coalesced"`
	RouterHints     int64 `json:"router_hints"`
	DiskFetches     int64 `json:"disk_fetches"`
	PeerFetches     int64 `json:"peer_fetches"`
	ProbeRecompiles int64 `json:"probe_recompiles"`
	ColdRestartOK   bool  `json:"cold_restart_ok"`
	CoalesceOK      bool  `json:"coalesce_ok"`

	// Trace-assembly audit: one failover forced under a known trace
	// identity, then the router's /v1/trace/{id} pulled and checked.
	// TraceShardProcs counts distinct shard process rows in the assembled
	// trace; TraceFailedFwd reports whether the router's side shows the
	// failed forward attempt; TraceAssembled is the gate — the one trace
	// must contain the router's spans plus spans from at least two shard
	// incarnations.
	TraceShardProcs int  `json:"trace_shard_procs"`
	TraceFailedFwd  bool `json:"trace_failed_forward"`
	TraceAssembled  bool `json:"trace_assembled"`
}

// The cold-restart probe sources: distinctive translation units no
// workload case collides with. The disk probe is compiled by a victim
// shard BEFORE it is SIGKILLed, so its artifact survives on disk; the
// peer probe is compiled by a surviving shard AFTER the audit, so the
// restarted shard can only know it by fetching across the cluster.
const (
	diskProbeSrc = "int main(void) { int disk_probe = 41; return disk_probe - 41; }\n"
	peerProbeSrc = "int main(void) { int peer_probe = 43; return peer_probe - 43; }\n"
)

// runShardProc is the hidden -shard-exec main: one undefd shard serving
// on a fixed address until the parent kills the process. artDir arms the
// artifact tier (persistent across the parent's kill/restart cycle);
// peers is the comma-separated sibling list for cross-shard fetch.
func runShardProc(addr, id, artDir, peers string) int {
	var peerList []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	srv, err := server.New(server.Config{ShardID: id, ArtifactDir: artDir, ArtifactPeers: peerList})
	if err != nil {
		fmt.Fprintf(os.Stderr, "undefbench shard %s: %v\n", id, err)
		return 1
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "undefbench shard %s: %v\n", id, err)
		return 1
	}
	go srv.Warmup(context.Background())
	if err := http.Serve(ln, srv.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "undefbench shard %s: serve: %v\n", id, err)
		return 1
	}
	return 0
}

// freePorts reserves n distinct loopback ports by binding and releasing
// them. The tiny bind race against other processes is acceptable in a
// benchmark harness.
func freePorts(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}

// spawnShard re-execs this binary as one shard process on addr.
func spawnShard(addr, id, artDir, peers string) (*exec.Cmd, error) {
	cmd := exec.Command(os.Args[0], "-shard-exec", "-shard-addr", addr, "-shard-id", id,
		"-shard-artifact-dir", artDir, "-shard-peers", peers)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return cmd, nil
}

// waitReady polls a /readyz until it answers 200 (the shard is up and
// compile-cache warm) or the deadline passes.
func waitReady(client *http.Client, addr string, deadline time.Time) error {
	for time.Now().Before(deadline) {
		resp, err := client.Get("http://" + addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("%s not ready before deadline", addr)
}

func runCluster(opts clusterOpts) int {
	if opts.kill >= opts.shards {
		opts.kill = opts.shards - 1 // at least one shard must survive
	}
	ports, err := freePorts(opts.shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "undefbench: ports: %v\n", err)
		return 1
	}

	// Per-shard artifact directories under one run-scoped root. The dirs
	// are keyed by ring position, NOT by process: a shard restarted onto
	// its old port reopens its old store — the property under audit.
	artRoot, err := os.MkdirTemp("", "undefbench-artifacts-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "undefbench: artifact root: %v\n", err)
		return 1
	}
	defer os.RemoveAll(artRoot)
	artDirs := make([]string, opts.shards)
	peerLists := make([]string, opts.shards)
	for i := range artDirs {
		artDirs[i] = filepath.Join(artRoot, fmt.Sprintf("s%d", i))
		var others []string
		for j, p := range ports {
			if j != i {
				others = append(others, p)
			}
		}
		peerLists[i] = strings.Join(others, ",")
	}

	// Real shard processes: a SIGKILL later must be a real process death.
	procs := make([]*exec.Cmd, opts.shards)
	defer func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	}()
	for i, addr := range ports {
		p, err := spawnShard(addr, fmt.Sprintf("s%d", i), artDirs[i], peerLists[i])
		if err != nil {
			fmt.Fprintf(os.Stderr, "undefbench: spawn shard %d: %v\n", i, err)
			return 1
		}
		procs[i] = p
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: opts.conns}}
	readyBy := time.Now().Add(30 * time.Second)
	for _, addr := range ports {
		if err := waitReady(client, addr, readyBy); err != nil {
			fmt.Fprintf(os.Stderr, "undefbench: %v\n", err)
			return 1
		}
	}

	// The router rides in-process: its failover loop, breakers, and
	// delivered counters are the objects under audit, and its /metrics is
	// served over HTTP like production so the audit reads the wire shape.
	var injector *fault.Injector
	if opts.injectSpec != "" {
		rules, err := fault.ParseSpec(opts.injectSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "undefbench: -inject: %v\n", err)
			return 2
		}
		injector = fault.NewInjector(opts.injectSeed, rules...)
	}
	rt, err := cluster.NewRouter(cluster.Config{
		Shards:        ports,
		ProbeInterval: 100 * time.Millisecond,
		Injector:      injector,
		Seed:          opts.seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "undefbench: router: %v\n", err)
		return 1
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "undefbench: %v\n", err)
		return 1
	}
	rt.Start()
	defer rt.Stop()
	rtSrv := &http.Server{Handler: rt.Handler()}
	go rtSrv.Serve(rln)
	defer rtSrv.Close()
	url := "http://" + rln.Addr().String()

	corpus := suite.Juliet().Cases
	hot := corpus
	if len(hot) > 4 {
		hot = corpus[:4]
	}

	// Seed the cold-restart audit: compile the disk probe on the first
	// victim BEFORE the chaos kills it. The process, its cache, and its
	// counters all die with the SIGKILL — only the artifact store
	// survives, which is exactly what the post-restart probe measures.
	if opts.kill > 0 {
		if err := probeAnalyze(client, ports[0], diskProbeSrc, "disk_probe.c"); err != nil {
			fmt.Fprintf(os.Stderr, "undefbench: disk-probe seed: %v\n", err)
			return 1
		}
	}

	// The chaos schedule: SIGKILL the victims at 35% of the run, restart
	// them on the same ports (same ring positions) at 60%, so the run ends
	// with every breaker recovered and every shard back in rotation.
	deadline := time.Now().Add(opts.dur)
	restarted := make(chan int, 1)
	var chaos sync.WaitGroup
	if opts.kill > 0 {
		chaos.Add(1)
		go func() {
			defer chaos.Done()
			time.Sleep(opts.dur * 35 / 100)
			for i := 0; i < opts.kill; i++ {
				procs[i].Process.Kill()
				procs[i].Wait()
				procs[i] = nil
			}
			time.Sleep(opts.dur * 25 / 100)
			n := 0
			for i := 0; i < opts.kill; i++ {
				p, err := spawnShard(ports[i], fmt.Sprintf("s%d", i), artDirs[i], peerLists[i])
				if err != nil {
					fmt.Fprintf(os.Stderr, "undefbench: restart shard %d: %v\n", i, err)
					continue
				}
				procs[i] = p
				n++
			}
			restarted <- n
		}()
	} else {
		restarted <- 0
	}

	stats := make([]workerStats, opts.conns)
	var wg sync.WaitGroup
	for w := 0; w < opts.conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.seed + int64(w)))
			st := &stats[w]
			st.verdicts = make(map[string]int64)
			for time.Now().Before(deadline) {
				c := &corpus[rng.Intn(len(corpus))]
				if rng.Float64() < opts.dup {
					c = &hot[rng.Intn(len(hot))]
				}
				oneRequest(client, url, c, st)
			}
		}(w)
	}
	wg.Wait()
	chaos.Wait()

	rep := clusterReport{Shards: opts.shards, Killed: opts.kill, Restarted: <-restarted}
	rep.Addr = rln.Addr().String()
	rep.Connections = opts.conns
	rep.DurationNS = opts.dur.Nanoseconds()
	rep.Verdicts = map[string]int64{}
	var all []time.Duration
	for i := range stats {
		st := &stats[i]
		all = append(all, st.latencies...)
		rep.Rejected += st.rejected
		rep.Unavailable += st.unavailable
		rep.Errors += st.errors
		rep.Coalesced += st.coalesced
		for v, n := range st.verdicts {
			rep.Verdicts[v] += n
		}
	}
	rep.Requests = int64(len(all))
	rep.Throughput = float64(rep.Requests) / opts.dur.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.P50NS = percentile(all, 0.50).Nanoseconds()
	rep.P95NS = percentile(all, 0.95).Nanoseconds()
	rep.P99NS = percentile(all, 0.99).Nanoseconds()
	if n := len(all); n > 0 {
		rep.MaxNS = all[n-1].Nanoseconds()
	}

	// Let in-flight shard work settle before reading counters: the last
	// responses were relayed, but a shard's own tally is written before
	// its response, so no wait is needed for correctness — only for the
	// queue-drained check to see idle queues.
	time.Sleep(200 * time.Millisecond)
	auditCluster(client, url, ports, procs, &rep)
	// The artifact audit runs strictly AFTER auditCluster: its direct
	// shard probes bump shard-local verdict counters the router never
	// delivered, which would wrongly fail the instance-match invariant.
	auditArtifacts(client, url, ports, procs, opts, &rep)
	// The trace audit runs LAST of all: it SIGKILLs a shard for real to
	// force a failover under a known trace identity, which would wreck
	// every earlier reconciliation.
	auditTrace(client, url, ports, procs, opts, &rep)

	if opts.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(&rep)
	} else {
		printClusterReport(&rep)
	}
	if !rep.ServerOK || !rep.TallyMatch || !rep.InstanceMatch || !rep.QueueEmpty ||
		!rep.ZeroErrors || !rep.BreakerCycle || !rep.ColdRestartOK || !rep.CoalesceOK ||
		!rep.TraceAssembled {
		return 1
	}
	return 0
}

// probeAnalyze posts one source straight to a shard (bypassing the
// router) and requires a verdict-bearing 200.
func probeAnalyze(client *http.Client, addr, src, file string) error {
	body, err := json.Marshal(server.AnalyzeRequest{Source: src, File: file})
	if err != nil {
		return err
	}
	resp, err := client.Post("http://"+addr+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard %s: probe status %d", addr, resp.StatusCode)
	}
	return nil
}

// auditArtifacts fills the artifact-tier verdicts: the cluster-wide
// fetch-vs-recompile split, the router's coalescing/hint counters, and —
// when the chaos killed and restarted a shard — the cold-restart gate:
// the restarted shard must answer a repeat of a pre-kill key from its
// surviving disk store, and a key it never saw by fetching from a peer,
// with ZERO frontend recompiles across both probes.
func auditArtifacts(client *http.Client, url string, ports []string, procs []*exec.Cmd, opts clusterOpts, rep *clusterReport) {
	rm, err := fetchRouterMetrics(client, url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "undefbench: router /metrics unreachable in artifact audit: %v\n", err)
		rep.ServerOK = false
		return
	}
	if rm.Artifact != nil {
		rep.RouterCoalesced = rm.Artifact.Coalesced
		rep.RouterHints = rm.Artifact.Hints
	}
	if rm.Aggregate != nil {
		rep.ClusterFetches = rm.Aggregate.Cache.ArtifactHits
		rep.ClusterCompiles = rm.Aggregate.Cache.Compiles
	}
	// With duplicate traffic in the workload, the cluster-wide
	// single-flight must have held at least one follower.
	rep.CoalesceOK = opts.dup <= 0 || rep.RouterCoalesced > 0

	rep.ColdRestartOK = true
	if opts.kill == 0 || rep.Restarted == 0 || procs[0] == nil {
		return
	}
	rep.ColdRestartOK = false
	addr := ports[0]
	if err := waitReady(client, addr, time.Now().Add(15*time.Second)); err != nil {
		fmt.Fprintf(os.Stderr, "undefbench: restarted shard: %v\n", err)
		return
	}
	before, err := fetchMetrics(client, "http://"+addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "undefbench: restarted shard /metrics: %v\n", err)
		return
	}
	// Probe 1: the key the dead incarnation compiled. Only the disk store
	// can know it here — the hot cache died with the process.
	if err := probeAnalyze(client, addr, diskProbeSrc, "disk_probe.c"); err != nil {
		fmt.Fprintf(os.Stderr, "undefbench: disk probe: %v\n", err)
		return
	}
	mid, err := fetchMetrics(client, "http://"+addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "undefbench: restarted shard /metrics: %v\n", err)
		return
	}
	// Probe 2: a key only a surviving peer holds. Prime the last shard
	// (never a kill victim) directly, then ask the restarted one.
	survivor := ports[len(ports)-1]
	if err := probeAnalyze(client, survivor, peerProbeSrc, "peer_probe.c"); err != nil {
		fmt.Fprintf(os.Stderr, "undefbench: peer-probe seed: %v\n", err)
		return
	}
	if err := probeAnalyze(client, addr, peerProbeSrc, "peer_probe.c"); err != nil {
		fmt.Fprintf(os.Stderr, "undefbench: peer probe: %v\n", err)
		return
	}
	after, err := fetchMetrics(client, "http://"+addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "undefbench: restarted shard /metrics: %v\n", err)
		return
	}

	if before.Artifact != nil && after.Artifact != nil {
		rep.DiskFetches = after.Artifact.DiskHits - before.Artifact.DiskHits
		rep.PeerFetches = after.Artifact.PeerHits - before.Artifact.PeerHits
	}
	rep.ProbeRecompiles = after.Cache.Compiles - before.Cache.Compiles
	diskHit := mid.Cache.ArtifactHits-before.Cache.ArtifactHits >= 1 &&
		mid.Cache.Compiles == before.Cache.Compiles
	peerHit := after.Artifact != nil && mid.Artifact != nil &&
		after.Artifact.PeerHits-mid.Artifact.PeerHits >= 1
	rep.ColdRestartOK = diskHit && peerHit && rep.ProbeRecompiles == 0
}

// tracedAnalyze posts one source through the router, optionally under an
// explicit trace identity, and returns the answering shard's ID and the
// router's attempt count (both from response headers).
func tracedAnalyze(client *http.Client, url, src, file, traceID string) (shard, attempts string, err error) {
	body, err := json.Marshal(server.AnalyzeRequest{Source: src, File: file})
	if err != nil {
		return "", "", err
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		return "", "", err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set("X-Undefc-Trace-Id", traceID)
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", "", err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return "", "", fmt.Errorf("analyze status %d", resp.StatusCode)
	}
	return resp.Header.Get("X-Undefc-Shard"), resp.Header.Get("X-Undefc-Attempts"), nil
}

// auditTrace forces one failover under a known trace identity and checks
// that the router's /v1/trace/{id} assembles ONE cross-node Chrome trace
// out of it: the router's own spans (including the failed attempt and the
// retry) stitched with the spans of every shard the identity touched. It
// must run last — the victim shard stays dead.
func auditTrace(client *http.Client, url string, ports []string, procs []*exec.Cmd, opts clusterOpts, rep *clusterReport) {
	if opts.shards < 3 || opts.kill == 0 {
		rep.TraceAssembled = true // no failover topology to assemble across
		return
	}
	const traceID = "c0ffee0000000001"
	// Discovery: find a distinct probe (source, file) pair routed to each
	// shard, read off the X-Undefc-Shard header. No trace header yet — the
	// probes must not pollute the trace under audit. The replay below MUST
	// reuse the exact pair: the ring key is driver.SourceKey over source
	// AND file, so changing either would route somewhere else.
	type probe struct{ src, file string }
	probeFor := make(map[string]probe)
	for i := 0; i < 96 && len(probeFor) < len(ports); i++ {
		p := probe{
			src:  fmt.Sprintf("int main(void) { int trace_probe_%d = %d; return trace_probe_%d - %d; }\n", i, i, i, i),
			file: fmt.Sprintf("trace_probe_%d.c", i),
		}
		sh, _, err := tracedAnalyze(client, url, p.src, p.file, "")
		if err != nil || sh == "" {
			continue
		}
		if _, ok := probeFor[sh]; !ok {
			probeFor[sh] = p
		}
	}
	if len(probeFor) < 3 {
		fmt.Fprintf(os.Stderr, "undefbench: trace audit: probes reached only %d of %d shards\n", len(probeFor), len(ports))
		return
	}
	// Victim: the last ring position with a live process and a known
	// probe. The other discovered shards stay alive, so at least two of
	// them will contribute spans under the shared identity.
	victim := -1
	for i := len(ports) - 1; i >= 0; i-- {
		if procs[i] != nil && probeFor[fmt.Sprintf("s%d", i)].src != "" {
			victim = i
			break
		}
	}
	if victim < 0 {
		fmt.Fprintf(os.Stderr, "undefbench: trace audit: no live shard with a probe source\n")
		return
	}
	victimID := fmt.Sprintf("s%d", victim)
	// Every surviving shard records its side of the trace first.
	for id, p := range probeFor {
		if id == victimID {
			continue
		}
		if _, _, err := tracedAnalyze(client, url, p.src, p.file, traceID); err != nil {
			fmt.Fprintf(os.Stderr, "undefbench: trace audit: %s request: %v\n", id, err)
			return
		}
	}
	// SIGKILL the victim and replay its probe under the same identity
	// immediately — before the prober notices — so the router's attempt at
	// the dead shard is real: connection refused, backoff, failover.
	procs[victim].Process.Kill()
	procs[victim].Wait()
	procs[victim] = nil
	vp := probeFor[victimID]
	if _, _, err := tracedAnalyze(client, url, vp.src, vp.file, traceID); err != nil {
		fmt.Fprintf(os.Stderr, "undefbench: trace audit: failover request: %v\n", err)
		return
	}

	resp, err := client.Get(url + "/v1/trace/" + traceID)
	if err != nil {
		fmt.Fprintf(os.Stderr, "undefbench: trace audit: /v1/trace: %v\n", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "undefbench: trace audit: /v1/trace status %d\n", resp.StatusCode)
		return
	}
	var tr obs.ChromeTrace
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&tr); err != nil {
		fmt.Fprintf(os.Stderr, "undefbench: trace audit: decode: %v\n", err)
		return
	}
	router := false
	for _, ev := range tr.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			switch name := ev.Args["name"]; {
			case name == "router":
				router = true
			case strings.HasPrefix(name, "shard "):
				rep.TraceShardProcs++
			}
		case ev.Ph == "X" && ev.Name == "forward" && ev.Args["error"] != "":
			rep.TraceFailedFwd = true
		}
	}
	rep.TraceAssembled = router && rep.TraceShardProcs >= 2
}

// auditCluster reads the router and live-shard /metrics and fills the
// report's invariant verdicts. A /metrics that cannot be read at audit
// time is itself an audit failure: an invariant that cannot be checked
// is not an invariant that held.
func auditCluster(client *http.Client, url string, ports []string, procs []*exec.Cmd, rep *clusterReport) {
	rm, err := fetchRouterMetrics(client, url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "undefbench: router /metrics unreachable at audit time: %v\n", err)
		rep.ServerOK = false
		return
	}
	rep.ServerOK = true
	rep.Failovers = rm.Forward.Failovers
	rep.InjectedFails = rm.Forward.Failures
	for _, v := range rm.Delivered {
		rep.RouterDelivered += v
	}

	// Invariant 1: the client-side verdict tally equals the router's
	// delivered counters, verdict for verdict. The router is fresh for
	// this run, so no before-snapshot is needed.
	rep.TallyMatch = len(rep.Verdicts) == len(rm.Delivered)
	for v, n := range rep.Verdicts {
		if rm.Delivered[v] != n {
			rep.TallyMatch = false
		}
	}

	// Invariant 2: each live shard's own verdict counters equal the
	// router's per-instance delivered counts; what remains of the total is
	// attributed to dead incarnations. The same sweep checks each live
	// shard's admission queue drained.
	rep.InstanceMatch = true
	rep.QueueEmpty = true
	var liveDelivered int64
	for i, addr := range ports {
		if procs[i] == nil {
			continue
		}
		sm, err := fetchMetrics(client, "http://"+addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "undefbench: shard %s /metrics unreachable at audit time: %v\n", addr, err)
			rep.ServerOK = false
			return
		}
		perInst := rm.DeliveredByInstance[sm.Instance]
		if len(sm.Verdicts) != len(perInst) {
			rep.InstanceMatch = false
		}
		for v, n := range sm.Verdicts {
			if perInst[v] != n {
				rep.InstanceMatch = false
			}
			liveDelivered += n
		}
		if sm.Queue.Depth != 0 || sm.Queue.Active != 0 {
			rep.QueueEmpty = false
		}
	}
	rep.DeadDelivered = rep.RouterDelivered - liveDelivered

	// Invariant 3: no client-visible crash — every request was answered
	// with a structured body.
	rep.ZeroErrors = rep.Errors == 0

	// Invariant 4: a killed-and-restarted shard's breaker walked the full
	// open → half-open → closed recovery cycle.
	rep.BreakerCycle = true
	if rep.Killed > 0 && rep.Restarted > 0 {
		rep.BreakerCycle = false
		for _, sh := range rm.Shards {
			b := sh.Breaker
			if b.Opens >= 1 && b.HalfOpens >= 1 && b.Closes >= 1 && b.State == "closed" {
				rep.BreakerCycle = true
			}
		}
	}
}

// fetchRouterMetrics reads the router's undefc.cluster/v1 metrics body.
func fetchRouterMetrics(client *http.Client, url string) (*cluster.RouterMetrics, error) {
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m cluster.RouterMetrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	if m.Schema != cluster.MetricsSchema {
		return nil, fmt.Errorf("unexpected schema %q", m.Schema)
	}
	return &m, nil
}

func printClusterReport(rep *clusterReport) {
	fmt.Printf("undefbench: cluster of %d shards (%d killed, %d restarted), %d connections, %s through router %s\n",
		rep.Shards, rep.Killed, rep.Restarted, rep.Connections, time.Duration(rep.DurationNS), rep.Addr)
	fmt.Printf("  requests:  %d ok, %d rejected (429), %d refused (503), %d errors — %.1f req/s\n",
		rep.Requests, rep.Rejected, rep.Unavailable, rep.Errors, rep.Throughput)
	fmt.Printf("  latency:   p50 %s · p95 %s · p99 %s · max %s  (client-side, through router)\n",
		time.Duration(rep.P50NS), time.Duration(rep.P95NS), time.Duration(rep.P99NS), time.Duration(rep.MaxNS))
	fmt.Printf("  verdicts: ")
	var keys []string
	for v := range rep.Verdicts {
		keys = append(keys, v)
	}
	sort.Strings(keys)
	for _, v := range keys {
		fmt.Printf("  %s %d", v, rep.Verdicts[v])
	}
	fmt.Println()
	fmt.Printf("  failover:  %d failovers over %d failed attempts · %d verdicts from killed incarnations\n",
		rep.Failovers, rep.InjectedFails, rep.DeadDelivered)
	ratio := "n/a"
	if total := rep.ClusterFetches + rep.ClusterCompiles; total > 0 {
		ratio = fmt.Sprintf("%.0f%% fetched", 100*float64(rep.ClusterFetches)/float64(total))
	}
	fmt.Printf("  artifacts: %d fetched vs %d compiled cluster-wide (%s) · router coalesced %d · hinted %d\n",
		rep.ClusterFetches, rep.ClusterCompiles, ratio, rep.RouterCoalesced, rep.RouterHints)
	if rep.Killed > 0 {
		fmt.Printf("  restart:   %d disk fetches, %d peer fetches, %d recompiles over the cold-restart probes\n",
			rep.DiskFetches, rep.PeerFetches, rep.ProbeRecompiles)
	}
	fmt.Printf("  trace:     %d shard processes in the assembled failover trace (failed attempt visible: %v)\n",
		rep.TraceShardProcs, rep.TraceFailedFwd)
	check := func(name string, ok bool) {
		state := "ok"
		if !ok {
			state = "FAILED"
		}
		fmt.Printf("  check:     %-36s %s\n", name, state)
	}
	check("router + live shards reachable", rep.ServerOK)
	check("zero client-visible crashes", rep.ZeroErrors)
	check("client tally == router delivered", rep.TallyMatch)
	check("live shard counters reconcile", rep.InstanceMatch)
	check("admission queues drained", rep.QueueEmpty)
	check("breaker cycled open→half-open→closed", rep.BreakerCycle)
	check("router coalesced duplicate compiles", rep.CoalesceOK)
	check("cold restart served from artifacts", rep.ColdRestartOK)
	check("failover trace assembled across nodes", rep.TraceAssembled)
}
