// Command undefbench is a closed-loop load generator for undefd: N
// connections each submit analyze requests back-to-back for a fixed
// duration, drawn from the Figure-2 (Juliet-style) corpus with a tunable
// duplicate fraction so request coalescing has something to coalesce.
// It reports throughput, the latency distribution (p50/p95/p99), the
// verdict tally, the coalescing hit rate, and — the part a load test is
// for — cross-checks its own client-side tally against the server's
// /metrics counters and verifies the daemon is still alive and drained.
//
//	$ undefbench -spawn -c 64 -d 10s
//	$ undefbench -addr 127.0.0.1:8790 -c 64 -d 10s -dup 0.5
//
// Flags:
//
//	-addr      bench an already-running daemon (mutually exclusive -spawn)
//	-spawn     start an in-process server on a free port and bench that
//	-c N       concurrent closed-loop connections (default 64)
//	-d dur     benchmark duration (default 10s)
//	-dup f     fraction of requests drawn from a small hot set (default 0.5)
//	-unique    give every request a distinct source, defeating the compile
//	           cache and coalescer — each request then pays a full frontend
//	           pass, which is the configuration for comparing server-side
//	           /metrics latency against the client-side measurement
//	-seed n    workload RNG seed (replayable)
//	-inject    with -spawn: fault-injection spec, e.g. 'server.handle=panic%0.01'
//	-explore   drive the streamed /v1/explore endpoint instead of
//	           /v1/analyze, over an order-sensitive corpus, auditing the
//	           serving invariants per response: NDJSON frames well-formed,
//	           trailer outcome count == streamed line tally, trailer stats
//	           consistent — then the /metrics explore counters against the
//	           client-side search count
//	-json      emit the report as JSON
//	-cluster N spawn N real shard processes plus a consistent-hash router
//	           and bench through the router; the audit then covers the
//	           cluster serving invariants (see cluster.go)
//	-kill K    with -cluster: SIGKILL K shards mid-load and restart them,
//	           proving failover keeps every invariant
//
// Exit status is non-zero when the daemon died, the verdict cross-check
// (or, under -explore, the frame/counter audit; under -cluster, the
// cluster invariants audit) fails, the queue did not drain, or /metrics
// was unreachable at audit time — an invariant that cannot be checked is
// treated as an invariant that failed.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/server"
	"repro/internal/suite"
)

type workerStats struct {
	latencies []time.Duration
	verdicts  map[string]int64
	coalesced int64
	rejected  int64 // 429 backpressure
	// unavailable counts structured 503 refusals (-cluster: every replica
	// failed within the retry budget). An honest, typed refusal is
	// backpressure, not a crash — the zero-crash audit excludes it.
	unavailable int64
	errors      int64 // transport or non-API failures
	searches    int64 // -explore: streams that passed the frame audit
	frameErrs   int64 // -explore: streams that violated a serving invariant
}

// report is the machine-readable benchmark result (-json).
type report struct {
	Addr        string  `json:"addr"`
	Connections int     `json:"connections"`
	DurationNS  int64   `json:"duration_ns"`
	Requests    int64   `json:"requests"`
	Rejected    int64   `json:"rejected"`
	Errors      int64   `json:"errors"`
	Throughput  float64 `json:"requests_per_sec"`
	P50NS       int64   `json:"p50_ns"`
	P95NS       int64   `json:"p95_ns"`
	P99NS       int64   `json:"p99_ns"`
	MaxNS       int64   `json:"max_ns"`
	// ServerP*NS are the daemon's own end-to-end quantiles over this run's
	// window, computed from the /metrics latency histogram delta
	// (after − before). Client-side adds network + HTTP framing; the gap
	// between the two columns is exactly that overhead.
	ServerP50NS int64            `json:"server_p50_ns,omitempty"`
	ServerP95NS int64            `json:"server_p95_ns,omitempty"`
	ServerP99NS int64            `json:"server_p99_ns,omitempty"`
	Verdicts    map[string]int64 `json:"verdicts"`
	Coalesced   int64            `json:"coalesced"`
	CoalesceHit float64          `json:"coalesce_hit_rate"`
	// Searches and FrameErrors are the -explore audit: streams whose
	// frames held every serving invariant, and streams that broke one.
	Searches    int64 `json:"searches,omitempty"`
	FrameErrors int64 `json:"frame_errors,omitempty"`
	ServerOK    bool  `json:"server_alive"`
	TallyMatch  bool  `json:"metrics_match"`
	QueueEmpty  bool  `json:"queue_drained"`
}

func main() {
	addr := flag.String("addr", "", "address of a running undefd (host:port)")
	spawn := flag.Bool("spawn", false, "start an in-process server and bench it")
	conns := flag.Int("c", 64, "concurrent closed-loop connections")
	dur := flag.Duration("d", 10*time.Second, "benchmark duration")
	dup := flag.Float64("dup", 0.5, "fraction of requests drawn from the hot set (coalescing fodder)")
	unique := flag.Bool("unique", false, "make every request's source distinct (defeats cache + coalescer)")
	heavy := flag.Int("heavy", 0, "pad every request with N synthetic functions (scales frontend work per request)")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	explore := flag.Bool("explore", false, "drive the streamed /v1/explore endpoint and audit its frames")
	engine := flag.String("engine", "", "with -spawn: execution engine for the server (tree or vm)")
	injectSpec := flag.String("inject", "", "with -spawn: fault-injection rules for the server")
	injectSeed := flag.Uint64("inject-seed", 1, "seed for probabilistic injection rules")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	clusterN := flag.Int("cluster", 0, "spawn N shard processes + a router and bench through the router")
	killN := flag.Int("kill", 0, "with -cluster: SIGKILL this many shards mid-load and restart them")
	shardExec := flag.Bool("shard-exec", false, "internal: run as a cluster shard process")
	shardAddr := flag.String("shard-addr", "", "internal: the -shard-exec listen address")
	shardName := flag.String("shard-id", "", "internal: the -shard-exec shard name")
	shardArtDir := flag.String("shard-artifact-dir", "", "internal: the -shard-exec artifact directory")
	shardPeers := flag.String("shard-peers", "", "internal: the -shard-exec comma-separated peer list")
	flag.Parse()

	if *shardExec {
		os.Exit(runShardProc(*shardAddr, *shardName, *shardArtDir, *shardPeers))
	}
	if *clusterN > 0 {
		os.Exit(runCluster(clusterOpts{
			shards:     *clusterN,
			kill:       *killN,
			conns:      *conns,
			dur:        *dur,
			dup:        *dup,
			seed:       *seed,
			injectSpec: *injectSpec,
			injectSeed: *injectSeed,
			asJSON:     *asJSON,
		}))
	}

	if (*addr == "") == !*spawn {
		fmt.Fprintln(os.Stderr, "undefbench: need exactly one of -addr or -spawn")
		os.Exit(2)
	}
	base := *addr
	if *spawn {
		var stop func()
		var err error
		base, stop, err = spawnServer(*engine, *injectSpec, *injectSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "undefbench: %v\n", err)
			os.Exit(1)
		}
		defer stop()
	}
	url := "http://" + base

	// The workload: the Figure-2 corpus. The hot set is small enough that
	// 64 closed-loop connections keep several identical submissions in
	// flight at once — exactly the traffic shape coalescing exists for.
	corpus := suite.Juliet().Cases
	if len(corpus) == 0 {
		fmt.Fprintln(os.Stderr, "undefbench: empty corpus")
		os.Exit(1)
	}
	hot := corpus
	if len(hot) > 4 {
		hot = corpus[:4]
	}

	// -heavy pads each submission into a larger translation unit: the
	// corpus programs are a few lines, so at network-negligible service
	// times the padding is what lets per-request analysis cost dominate
	// the fixed HTTP overhead in a latency comparison.
	var pad strings.Builder
	for i := 0; i < *heavy; i++ {
		fmt.Fprintf(&pad, "static int pad%d(int x) { return x + %d; }\n", i, i)
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *conns}}
	before, err := fetchMetrics(client, url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "undefbench: /metrics before run: %v\n", err)
		os.Exit(1)
	}

	deadline := time.Now().Add(*dur)
	stats := make([]workerStats, *conns)
	var wg sync.WaitGroup
	for w := 0; w < *conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			st := &stats[w]
			st.verdicts = make(map[string]int64)
			seq := 0
			for time.Now().Before(deadline) {
				if *explore {
					oneExplore(client, url, &exploreCorpus[rng.Intn(len(exploreCorpus))], st)
					continue
				}
				c := &corpus[rng.Intn(len(corpus))]
				if rng.Float64() < *dup {
					c = &hot[rng.Intn(len(hot))]
				}
				if *unique || *heavy > 0 {
					uc := *c
					uc.Source = pad.String() + c.Source
					if *unique {
						// A distinct leading comment changes the source
						// identity: every request is a compile-cache miss
						// and never coalesces, so each one pays the full
						// frontend + analysis cost it claims to measure.
						uc.Source = fmt.Sprintf("/* bench %d.%d */\n%s", w, seq, uc.Source)
						seq++
					}
					c = &uc
				}
				oneRequest(client, url, c, st)
			}
		}(w)
	}
	wg.Wait()
	elapsed := *dur

	// Merge worker shards.
	rep := report{Addr: base, Connections: *conns, DurationNS: elapsed.Nanoseconds(), Verdicts: map[string]int64{}}
	var all []time.Duration
	for i := range stats {
		st := &stats[i]
		all = append(all, st.latencies...)
		rep.Coalesced += st.coalesced
		rep.Rejected += st.rejected
		rep.Errors += st.errors
		rep.Searches += st.searches
		rep.FrameErrors += st.frameErrs
		for v, n := range st.verdicts {
			rep.Verdicts[v] += n
		}
	}
	rep.Requests = int64(len(all))
	rep.Throughput = float64(rep.Requests) / elapsed.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.P50NS = percentile(all, 0.50).Nanoseconds()
	rep.P95NS = percentile(all, 0.95).Nanoseconds()
	rep.P99NS = percentile(all, 0.99).Nanoseconds()
	if n := len(all); n > 0 {
		rep.MaxNS = all[n-1].Nanoseconds()
	}
	if rep.Requests > 0 {
		rep.CoalesceHit = float64(rep.Coalesced) / float64(rep.Requests)
	}

	// The verification pass: daemon alive, counters honest, queue empty.
	// An unreachable /metrics is a hard audit failure, loudly attributed:
	// nothing below can be checked without it.
	after, err := fetchMetrics(client, url)
	rep.ServerOK = err == nil
	if err != nil {
		fmt.Fprintf(os.Stderr, "undefbench: /metrics unreachable at audit time: %v\n", err)
	}
	if rep.ServerOK {
		rep.TallyMatch = true
		if *explore {
			// The explore audit: every clean stream the clients counted
			// must appear in the server's search counter, and no stream
			// may have broken a framing invariant.
			rep.TallyMatch = exploreSearches(after)-exploreSearches(before) == rep.Searches &&
				rep.FrameErrors == 0
		} else {
			for v, n := range rep.Verdicts {
				if after.Verdicts[v]-before.Verdicts[v] != n {
					rep.TallyMatch = false
				}
			}
			for v := range after.Verdicts {
				if _, seen := rep.Verdicts[v]; !seen && after.Verdicts[v] != before.Verdicts[v] {
					rep.TallyMatch = false
				}
			}
		}
		rep.QueueEmpty = after.Queue.Depth == 0 && after.Queue.Active == 0
		// Server-side latency over this run only: the histogram is
		// cumulative since server start, so window it by subtracting the
		// pre-run snapshot.
		if cur, ok := after.Latency["e2e"]; ok && cur != nil {
			win := cur
			if prev, ok := before.Latency["e2e"]; ok && prev != nil {
				win = cur.Sub(prev)
			}
			if win.Count > 0 {
				rep.ServerP50NS = win.Quantile(0.50)
				rep.ServerP95NS = win.Quantile(0.95)
				rep.ServerP99NS = win.Quantile(0.99)
			}
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(&rep)
	} else {
		printReport(&rep, after, before)
	}
	if !rep.ServerOK || !rep.TallyMatch || !rep.QueueEmpty {
		os.Exit(1)
	}
}

// oneRequest runs one closed-loop iteration against /v1/analyze.
func oneRequest(client *http.Client, url string, c *suite.Case, st *workerStats) {
	body, _ := json.Marshal(&server.AnalyzeRequest{Source: c.Source, File: c.Name + ".c"})
	start := time.Now()
	httpResp, err := client.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		st.errors++
		return
	}
	data, err := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	lat := time.Since(start)
	if err != nil {
		st.errors++
		return
	}
	if httpResp.StatusCode == http.StatusTooManyRequests {
		st.rejected++
		return
	}
	if httpResp.StatusCode == http.StatusServiceUnavailable {
		// A 503 with the typed error body is a structured refusal — the
		// router exhausted its bounded retry budget (or the box is
		// draining) and said so honestly. That is backpressure, like a
		// 429, not a crash. A 503 with a torn or alien body still is.
		var er server.ErrorResponse
		if json.Unmarshal(data, &er) == nil && er.Schema == server.APISchema && er.Error.Code != "" {
			st.unavailable++
			return
		}
		st.errors++
		return
	}
	var resp server.AnalyzeResponse
	if jerr := json.Unmarshal(data, &resp); jerr != nil || resp.Schema != server.APISchema || resp.Result.Tool == "" {
		st.errors++
		return
	}
	st.latencies = append(st.latencies, lat)
	st.verdicts[resp.Result.Verdict.String()]++
	if resp.Coalesced {
		st.coalesced++
	}
}

// exploreCorpus is the -explore workload: small programs whose behavior
// depends on evaluation order, so every search has real work and a
// multi-outcome stream to audit.
var exploreCorpus = []suite.Case{
	{Name: "setdenom", Source: `
int d = 5;
int setDenom(int x) { return d = x; }
int main(void) { return (10/d) + setDenom(0); }
`},
	{Name: "unseq", Source: `
int main(void) {
	int x = 1;
	return x + x++;
}
`},
	{Name: "order_calls", Source: `
int x = 0;
int bump(void) { return ++x; }
int twice(void) { return x * 2; }
int main(void) { return bump() + twice(); }
`},
	{Name: "commuting_nest", Source: `
int a, b, c, d2;
int main(void) {
	return (a = 1) + (b = 1) + (c = 1) + (d2 = 1);
}
`},
}

// oneExplore runs one closed-loop iteration against the streamed
// /v1/explore, checking every serving invariant the frames promise:
// header first with the schema, each outcome line well-formed, exactly
// one trailer marked done, trailer outcome count == streamed lines, and
// trailer stats consistent with its own run counter.
func oneExplore(client *http.Client, url string, c *suite.Case, st *workerStats) {
	body, _ := json.Marshal(&server.ExploreRequest{Source: c.Source, File: c.Name + ".c", Parallelism: 2})
	req, err := http.NewRequest("POST", url+"/v1/explore", bytes.NewReader(body))
	if err != nil {
		st.errors++
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	start := time.Now()
	httpResp, err := client.Do(req)
	if err != nil {
		st.errors++
		return
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, httpResp.Body)
		st.rejected++
		return
	}
	if httpResp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, httpResp.Body)
		st.errors++
		return
	}
	var (
		hdr      server.ExploreHeader
		trailer  server.ExploreTrailer
		outcomes int
		frames   int
		broken   bool
	)
	sc := bufio.NewScanner(httpResp.Body)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		frames++
		switch {
		case frames == 1:
			if json.Unmarshal(line, &hdr) != nil || hdr.Schema != server.APISchema {
				broken = true
			}
		case trailer.Done:
			broken = true // frames after the trailer
		default:
			var o server.ExploreOutcomeLine
			if json.Unmarshal(line, &trailer) == nil && trailer.Done {
				continue
			}
			trailer = server.ExploreTrailer{}
			if json.Unmarshal(line, &o) != nil || o.Runs <= 0 {
				broken = true
				continue
			}
			outcomes++
		}
	}
	lat := time.Since(start)
	if sc.Err() != nil {
		st.errors++
		return
	}
	switch {
	case broken,
		!trailer.Done,
		trailer.Error != nil,
		trailer.Outcomes != outcomes,
		trailer.Stats == nil,
		trailer.Stats != nil && trailer.Stats.OrdersExplored != int64(trailer.Runs):
		st.frameErrs++
	default:
		st.searches++
		st.latencies = append(st.latencies, lat)
		if trailer.Exhausted {
			st.verdicts["exhausted"]++
		} else {
			st.verdicts["truncated"]++
		}
	}
}

// exploreSearches reads the explore search counter, absent-safe: a server
// that has never explored reports no block at all.
func exploreSearches(m *server.MetricsResponse) int64 {
	if m == nil || m.Explore == nil {
		return 0
	}
	return m.Explore.Searches
}

func fetchMetrics(client *http.Client, url string) (*server.MetricsResponse, error) {
	httpResp, err := client.Get(url + "/metrics")
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	var m server.MetricsResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&m); err != nil {
		return nil, err
	}
	if m.Schema != server.APISchema {
		return nil, fmt.Errorf("unexpected schema %q", m.Schema)
	}
	return &m, nil
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func printReport(rep *report, after, before *server.MetricsResponse) {
	fmt.Printf("undefbench: %d connections, %s against http://%s\n",
		rep.Connections, time.Duration(rep.DurationNS), rep.Addr)
	fmt.Printf("  requests:  %d ok, %d rejected (429), %d errors — %.1f req/s\n",
		rep.Requests, rep.Rejected, rep.Errors, rep.Throughput)
	fmt.Printf("  latency:   p50 %s · p95 %s · p99 %s · max %s  (client-side)\n",
		time.Duration(rep.P50NS), time.Duration(rep.P95NS), time.Duration(rep.P99NS), time.Duration(rep.MaxNS))
	if rep.ServerP50NS > 0 {
		fmt.Printf("             p50 %s · p95 %s · p99 %s  (server-side, /metrics window)\n",
			time.Duration(rep.ServerP50NS), time.Duration(rep.ServerP95NS), time.Duration(rep.ServerP99NS))
	}
	fmt.Printf("  verdicts: ")
	var keys []string
	for v := range rep.Verdicts {
		keys = append(keys, v)
	}
	sort.Strings(keys)
	for _, v := range keys {
		fmt.Printf("  %s %d", v, rep.Verdicts[v])
	}
	fmt.Println()
	fmt.Printf("  coalesced: %d/%d responses (%.1f%% hit rate)\n",
		rep.Coalesced, rep.Requests, 100*rep.CoalesceHit)
	if rep.Searches > 0 || rep.FrameErrors > 0 {
		fmt.Printf("  explore:   %d searches audited clean, %d frame violations\n",
			rep.Searches, rep.FrameErrors)
	}
	if after != nil {
		fmt.Printf("  server:    %d leaders, %d followers · cache %d compiles / %d hits · queue max depth %d, max active %d · %d contained panics\n",
			after.Coalesce.Leaders-before.Coalesce.Leaders,
			after.Coalesce.Followers-before.Coalesce.Followers,
			after.Cache.Misses-before.Cache.Misses,
			after.Cache.Hits-before.Cache.Hits,
			after.Queue.MaxDepth, after.Queue.MaxActive,
			after.Panics-before.Panics)
	}
	check := func(name string, ok bool) {
		state := "ok"
		if !ok {
			state = "FAILED"
		}
		fmt.Printf("  check:     %-28s %s\n", name, state)
	}
	check("daemon alive after run", rep.ServerOK)
	if rep.Searches > 0 || rep.FrameErrors > 0 {
		check("explore frames + counters", rep.TallyMatch)
	} else {
		check("verdict counters match tally", rep.TallyMatch)
	}
	check("admission queue drained", rep.QueueEmpty)
}

// spawnServer starts an in-process service on a loopback port — the same
// server the daemon mounts, minus the process boundary — and returns its
// address and a stop function.
func spawnServer(engine, injectSpec string, injectSeed uint64) (string, func(), error) {
	var injector *fault.Injector
	if injectSpec != "" {
		rules, err := fault.ParseSpec(injectSpec)
		if err != nil {
			return "", nil, fmt.Errorf("-inject: %v", err)
		}
		injector = fault.NewInjector(injectSeed, rules...)
	}
	srv, err := server.New(server.Config{Engine: engine, Injector: injector})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	return ln.Addr().String(), func() { httpSrv.Close() }, nil
}
