// Command undefd is the undefinedness-analysis daemon: the checker behind
// cmd/kcc served as a long-lived HTTP service speaking undefc.api/v1.
//
//	$ undefd -addr 127.0.0.1:8790
//	undefd: listening on 127.0.0.1:8790
//
//	$ curl -s localhost:8790/v1/analyze -d '{"source":"int main(void){int x;return x;}"}'
//	{"schema": "undefc.api/v1", "file": "request.c", "result": {...verdict...}}
//
// Flags:
//
//	-addr            listen address (default 127.0.0.1:8790; :0 picks a port)
//	-model           default implementation-defined model (LP64, ILP32, INT8)
//	-engine          execution engine: tree (default) or vm (pre-compiled
//	                 closure code; identical verdicts, faster)
//	-concurrency N   analyses executing at once (0 = all CPUs)
//	-queue N         admission queue depth beyond that (429 when full)
//	-timeout d       default per-request watchdog
//	-max-timeout d   ceiling a request may ask for
//	-max-steps N     default execution step budget (0 = pipeline default)
//	-explore-max-runs N  ceiling on evaluation orders a /v1/explore
//	                 search may execute (0 = 5000)
//	-drain d         grace period for in-flight requests on SIGTERM/SIGINT
//	-inject spec     deterministic fault injection (see internal/fault),
//	                 e.g. 'server.handle=panic%0.01'
//	-inject-seed n   seed for probabilistic injection rules
//	-trace-sample N  trace every Nth analyze request end to end; traced
//	                 responses carry a trace_id resolvable at
//	                 GET /v1/trace/{id} as Chrome trace-event JSON
//	-flight N        flight-recorder ring size per analysis (-1 auto:
//	                 armed when -inject is; 0 off)
//
// Observability routes (every response also carries X-Undefc-Trace-Id):
//
//	GET /v1/spans/{trace}  this process's retained spans for one trace
//	                       (bounded ring; always on, no sampling needed)
//	GET /v1/coverage       the UB check-site coverage ledger — per-behavior
//	                       evaluated/fired counters and dead coverage; the
//	                       router's route merges every shard's ledger, and
//	                       its GET /v1/trace/{id} stitches router + shard
//	                       spans into one cross-node Chrome trace
//	-debug-addr      second listener with GET /debug/pprof/... and
//	                 POST /debug/metrics/reset; keep it loopback-only
//	-artifact-dir    content-addressed artifact store directory: compiled
//	                 programs persist across restarts and are served to
//	                 peers on GET /v1/artifact/{key}
//	-artifact-max-bytes  artifact store size cap (default 256 MiB)
//	-peers a,b,c     sibling shard addresses to fetch missing artifacts
//	                 from before recompiling (shard mode only)
//
// Cluster flags:
//
//	-router          run as the cluster front router instead of a shard:
//	                 consistent-hash requests over -shards, probe their
//	                 /readyz, fail over with backoff when one dies
//	-shards a,b,c    shard addresses (host:port) forming the ring
//	-shard-id s      this shard's name, stamped on every response as
//	                 X-Undefc-Shard (shard mode only)
//	-probe-interval  router health-probe period (default 250ms)
//
// On SIGTERM or SIGINT the daemon drains: /readyz flips to 503 so load
// balancers (and the cluster router) stop routing here, the listener
// closes, in-flight requests get -drain to finish, and the process exits
// 0. /healthz stays 200 the whole time — it answers "is the process
// alive", not "should traffic come here".
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is main with its edges injectable for the smoke test: ready (when
// non-nil) receives the bound listen address once the daemon accepts
// connections.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("undefd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8790", "listen address (:0 picks a free port)")
	model := fs.String("model", "LP64", "default implementation-defined model: LP64, ILP32, or INT8")
	engine := fs.String("engine", "", "execution engine: tree (default) or vm")
	concurrency := fs.Int("concurrency", 0, "analyses executing at once (0 = all CPUs)")
	queueDepth := fs.Int("queue", 64, "admission queue depth; arrivals beyond it get 429")
	timeout := fs.Duration("timeout", 5*time.Second, "default per-request watchdog")
	maxTimeout := fs.Duration("max-timeout", 30*time.Second, "largest watchdog a request may ask for")
	maxSteps := fs.Int64("max-steps", 0, "default execution step budget (0 = pipeline default)")
	exploreRuns := fs.Int("explore-max-runs", 0, "ceiling on evaluation orders per /v1/explore search (0 = 5000)")
	drain := fs.Duration("drain", 10*time.Second, "grace period for in-flight requests on shutdown")
	injectSpec := fs.String("inject", "", "fault-injection rules: site=kind[:arg][*count][@after][~match][%prob],...")
	injectSeed := fs.Uint64("inject-seed", 1, "seed for probabilistic injection rules")
	traceSample := fs.Int("trace-sample", 0, "trace every Nth analyze request (0 = off, 1 = all)")
	flight := fs.Int("flight", -1, "flight-recorder events per analysis (-1 = auto, 0 = off)")
	debugAddr := fs.String("debug-addr", "", "debug listener (pprof + metrics reset); empty = disabled")
	artifactDir := fs.String("artifact-dir", "", "compiled-program artifact store directory (empty = tier off)")
	artifactMax := fs.Int64("artifact-max-bytes", 0, "artifact store size cap in bytes (0 = 256 MiB default)")
	peers := fs.String("peers", "", "comma-separated sibling shard addresses for artifact peer fetch")
	router := fs.Bool("router", false, "run as the cluster front router over -shards")
	shards := fs.String("shards", "", "comma-separated shard addresses for -router mode")
	shardID := fs.String("shard-id", "", "this shard's name, stamped as X-Undefc-Shard on responses")
	probeInterval := fs.Duration("probe-interval", 250*time.Millisecond, "router /readyz probe period")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var injector *fault.Injector
	if *injectSpec != "" {
		rules, err := fault.ParseSpec(*injectSpec)
		if err != nil {
			fmt.Fprintf(stderr, "undefd: -inject: %v\n", err)
			return 2
		}
		injector = fault.NewInjector(*injectSeed, rules...)
		fmt.Fprintf(stdout, "undefd: fault injection armed: %s\n", *injectSpec)
	}

	if *router {
		return runRouter(routerOpts{
			addr:          *addr,
			shards:        *shards,
			model:         *model,
			probeInterval: *probeInterval,
			drain:         *drain,
			traceSample:   *traceSample,
			injector:      injector,
			seed:          int64(*injectSeed),
		}, stdout, stderr, ready)
	}
	if *shards != "" {
		fmt.Fprintln(stderr, "undefd: -shards requires -router")
		return 2
	}
	if *peers != "" && *artifactDir == "" {
		fmt.Fprintln(stderr, "undefd: -peers requires -artifact-dir")
		return 2
	}

	// Flag semantics (-1 auto / 0 off) invert the Config's (0 auto /
	// negative off): a CLI flag needs an explicit "off" a zero value can
	// express, a config struct needs a useful zero value.
	cfgFlight := *flight
	switch {
	case cfgFlight < 0:
		cfgFlight = 0 // auto
	case cfgFlight == 0:
		cfgFlight = -1 // explicitly off
	}
	srv, err := server.New(server.Config{
		Model:          *model,
		Engine:         *engine,
		Concurrency:    *concurrency,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxSteps:       *maxSteps,
		MaxExploreRuns: *exploreRuns,
		Injector:       injector,
		TraceSample:    *traceSample,
		Flight:         cfgFlight,
		ShardID:        *shardID,
		ArtifactDir:      *artifactDir,
		ArtifactMaxBytes: *artifactMax,
		ArtifactPeers:    splitAddrs(*peers),
	})
	if err != nil {
		fmt.Fprintf(stderr, "undefd: %v\n", err)
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "undefd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "undefd: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	// Warm the compile cache off the serving path: /readyz answers "cold"
	// until the first compile lands, so a cluster router holds traffic
	// back from a shard that would pay full frontend latency on its first
	// real request.
	go func() {
		wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer wcancel()
		srv.Warmup(wctx)
	}()

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	// The debug surface (pprof + metrics reset) gets its own listener and
	// its own http.Server: it must never share a port with the serving
	// API, and it dies with the process rather than draining — nobody
	// waits for a profile to finish during shutdown.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(stderr, "undefd: debug listener: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "undefd: debug surface on http://%s/debug/pprof/\n", dln.Addr())
		debugSrv = &http.Server{Handler: srv.DebugHandler()}
		go debugSrv.Serve(dln)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sig)

	select {
	case got := <-sig:
		fmt.Fprintf(stdout, "undefd: %v: draining (up to %v)\n", got, *drain)
		srv.SetDraining(true)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(stderr, "undefd: drain: %v\n", err)
			return 1
		}
		if debugSrv != nil {
			debugSrv.Close()
		}
		st := srv.CacheStats()
		fmt.Fprintf(stdout, "undefd: drained clean (%d compiles, %d artifact hits, %d cache hits served)\n",
			st.Compiles, st.ArtifactHits, st.Hits)
		return 0
	case err := <-errc:
		fmt.Fprintf(stderr, "undefd: serve: %v\n", err)
		return 1
	}
}

// splitAddrs parses a comma-separated address list, dropping blanks.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// routerOpts carries the subset of flags the router mode uses.
type routerOpts struct {
	addr          string
	shards        string
	model         string
	probeInterval time.Duration
	drain         time.Duration
	traceSample   int
	injector      *fault.Injector
	seed          int64
}

// runRouter is the -router main: mount a cluster.Router over the shard
// list and serve until a drain signal.
func runRouter(opts routerOpts, stdout, stderr io.Writer, ready chan<- string) int {
	var addrs []string
	for _, a := range strings.Split(opts.shards, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(stderr, "undefd: -router needs -shards host:port[,host:port...]")
		return 2
	}
	rt, err := cluster.NewRouter(cluster.Config{
		Shards:        addrs,
		ProbeInterval: opts.probeInterval,
		Model:         opts.model,
		TraceSample:   opts.traceSample,
		Injector:      opts.injector,
		Seed:          opts.seed,
	})
	if err != nil {
		fmt.Fprintf(stderr, "undefd: router: %v\n", err)
		return 2
	}
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		fmt.Fprintf(stderr, "undefd: %v\n", err)
		return 1
	}
	rt.Start()
	defer rt.Stop()
	fmt.Fprintf(stdout, "undefd: router listening on %s (%d shards)\n", ln.Addr(), len(addrs))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	httpSrv := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sig)

	select {
	case got := <-sig:
		fmt.Fprintf(stdout, "undefd: router %v: draining (up to %v)\n", got, opts.drain)
		rt.SetDraining(true)
		ctx, cancel := context.WithTimeout(context.Background(), opts.drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(stderr, "undefd: router drain: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, "undefd: router drained clean")
		return 0
	case err := <-errc:
		fmt.Fprintf(stderr, "undefd: router serve: %v\n", err)
		return 1
	}
}
