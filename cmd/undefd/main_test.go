package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
)

// TestDaemonSmoke boots the daemon on a free port, performs one analyze
// round-trip, then delivers SIGTERM and asserts a clean drain: exit code
// 0 and /healthz flipped to draining semantics on the way down. This is
// the whole daemon lifecycle in one test — what `make check` runs.
func TestDaemonSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan int, 1)
	var mu sync.Mutex // run writes the buffers; the test reads them after done
	go func() {
		mu.Lock()
		defer mu.Unlock()
		done <- run([]string{"-addr", "127.0.0.1:0", "-drain", "5s"}, &stdout, &stderr, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never came up")
	}
	url := "http://" + addr

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	body, _ := json.Marshal(server.AnalyzeRequest{
		Source: "int main(void) { int x; return x; }",
		File:   "smoke.c",
	})
	resp, err = http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	var ar server.AnalyzeResponse
	err = json.NewDecoder(resp.Body).Decode(&ar)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("analyze decode: %v", err)
	}
	if resp.StatusCode != http.StatusOK || ar.Schema != server.APISchema {
		t.Fatalf("analyze = %d %q, want 200 %q", resp.StatusCode, ar.Schema, server.APISchema)
	}
	if ar.Result.Verdict.String() != "flagged" {
		t.Errorf("verdict = %v, want flagged (uninitialized read)", ar.Result.Verdict)
	}

	// The daemon registered its signal handler before ready fired, so this
	// SIGTERM reaches run's Notify channel, not the default handler.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var code int
	select {
	case code = <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never drained after SIGTERM")
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, stderr.String())
	}
	mu.Lock()
	out := stdout.String()
	mu.Unlock()
	for _, want := range []string{"listening on " + addr, "draining", "drained clean"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

// TestDaemonBadFlags pins the usage exit codes without binding a port.
func TestDaemonBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-inject", "server.handle=explode"}, &stdout, &stderr, nil); code != 2 {
		t.Errorf("bad inject spec: exit = %d, want 2", code)
	}
	if code := run([]string{"-model", "PDP11"}, &stdout, &stderr, nil); code != 2 {
		t.Errorf("bad model: exit = %d, want 2", code)
	}
}
