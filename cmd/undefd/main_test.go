package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

// TestDaemonSmoke boots the daemon on a free port, performs one analyze
// round-trip, then delivers SIGTERM and asserts a clean drain: exit code
// 0 and /healthz flipped to draining semantics on the way down. This is
// the whole daemon lifecycle in one test — what `make check` runs.
func TestDaemonSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan int, 1)
	var mu sync.Mutex // run writes the buffers; the test reads them after done
	go func() {
		mu.Lock()
		defer mu.Unlock()
		done <- run([]string{"-addr", "127.0.0.1:0", "-drain", "5s"}, &stdout, &stderr, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never came up")
	}
	url := "http://" + addr

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	body, _ := json.Marshal(server.AnalyzeRequest{
		Source: "int main(void) { int x; return x; }",
		File:   "smoke.c",
	})
	resp, err = http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	var ar server.AnalyzeResponse
	err = json.NewDecoder(resp.Body).Decode(&ar)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("analyze decode: %v", err)
	}
	if resp.StatusCode != http.StatusOK || ar.Schema != server.APISchema {
		t.Fatalf("analyze = %d %q, want 200 %q", resp.StatusCode, ar.Schema, server.APISchema)
	}
	if ar.Result.Verdict.String() != "flagged" {
		t.Errorf("verdict = %v, want flagged (uninitialized read)", ar.Result.Verdict)
	}

	// The daemon registered its signal handler before ready fired, so this
	// SIGTERM reaches run's Notify channel, not the default handler.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var code int
	select {
	case code = <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never drained after SIGTERM")
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, stderr.String())
	}
	mu.Lock()
	out := stdout.String()
	mu.Unlock()
	for _, want := range []string{"listening on " + addr, "draining", "drained clean"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

// TestRouterSmoke boots one shard daemon and one router daemon over it,
// performs an analyze round-trip through the router, checks the shard
// attribution headers and the router's delivered counter, then SIGTERMs
// both and asserts clean drains. The signal fans out to every Notify
// channel in this process, so one kill drains shard and router together.
func TestRouterSmoke(t *testing.T) {
	var shardOut, shardErr, rtOut, rtErr bytes.Buffer
	shardReady := make(chan string, 1)
	shardDone := make(chan int, 1)
	var shardMu sync.Mutex
	go func() {
		shardMu.Lock()
		defer shardMu.Unlock()
		shardDone <- run([]string{"-addr", "127.0.0.1:0", "-shard-id", "s0", "-drain", "5s"},
			&shardOut, &shardErr, shardReady)
	}()
	var shardAddr string
	select {
	case shardAddr = <-shardReady:
	case <-time.After(10 * time.Second):
		t.Fatal("shard never came up")
	}

	rtReady := make(chan string, 1)
	rtDone := make(chan int, 1)
	var rtMu sync.Mutex
	go func() {
		rtMu.Lock()
		defer rtMu.Unlock()
		rtDone <- run([]string{"-addr", "127.0.0.1:0", "-router", "-shards", shardAddr,
			"-probe-interval", "50ms", "-drain", "5s"}, &rtOut, &rtErr, rtReady)
	}()
	var rtAddr string
	select {
	case rtAddr = <-rtReady:
	case <-time.After(10 * time.Second):
		t.Fatal("router never came up")
	}
	url := "http://" + rtAddr

	// The shard warms its compile cache asynchronously; route only once
	// the router reports it ready.
	readyBy := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(readyBy) {
			t.Fatal("router never saw the shard ready")
		}
		time.Sleep(25 * time.Millisecond)
	}

	body, _ := json.Marshal(server.AnalyzeRequest{
		Source: "int main(void) { int x; return x; }",
		File:   "smoke.c",
	})
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("analyze via router: %v", err)
	}
	var ar server.AnalyzeResponse
	err = json.NewDecoder(resp.Body).Decode(&ar)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze via router = %d (%v)", resp.StatusCode, err)
	}
	if ar.Result.Verdict.String() != "flagged" {
		t.Errorf("verdict = %v, want flagged", ar.Result.Verdict)
	}
	if got := resp.Header.Get("X-Undefc-Shard"); got != "s0" {
		t.Errorf("X-Undefc-Shard = %q, want s0 (relayed from the shard)", got)
	}
	if resp.Header.Get("X-Undefc-Instance") == "" {
		t.Error("response lost the shard's X-Undefc-Instance header")
	}
	resp.Body.Close()

	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("router metrics: %v", err)
	}
	var rm cluster.RouterMetrics
	err = json.NewDecoder(resp.Body).Decode(&rm)
	resp.Body.Close()
	if err != nil || rm.Schema != cluster.MetricsSchema {
		t.Fatalf("router metrics = %q (%v), want schema %q", rm.Schema, err, cluster.MetricsSchema)
	}
	if rm.Delivered["flagged"] != 1 {
		t.Errorf("router delivered = %v, want {flagged:1}", rm.Delivered)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for name, done := range map[string]chan int{"shard": shardDone, "router": rtDone} {
		select {
		case code := <-done:
			if code != 0 {
				t.Errorf("%s exit = %d, want 0", name, code)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("%s never drained after SIGTERM", name)
		}
	}
	rtMu.Lock()
	out := rtOut.String()
	rtMu.Unlock()
	for _, want := range []string{"router listening on " + rtAddr, "router drained clean"} {
		if !strings.Contains(out, want) {
			t.Errorf("router stdout missing %q:\n%s", want, out)
		}
	}
}

// TestDaemonBadFlags pins the usage exit codes without binding a port.
func TestDaemonBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-inject", "server.handle=explode"}, &stdout, &stderr, nil); code != 2 {
		t.Errorf("bad inject spec: exit = %d, want 2", code)
	}
	if code := run([]string{"-model", "PDP11"}, &stdout, &stderr, nil); code != 2 {
		t.Errorf("bad model: exit = %d, want 2", code)
	}
}
