// Quickstart: compile and run a C program against the executable
// semantics, and see how an undefined program is rejected with a
// kcc-style report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	undefc "repro"
)

const defined = `
#include <stdio.h>
int main(void) {
	printf("Hello world\n");
	return 0;
}
`

// The paper's §2.3 example: assignment is an expression, so this "looks
// like" it returns 3 — but the two writes to x are unsequenced, and GCC
// famously returns 4. The standard's answer: the program has no meaning.
const undefined = `
int main(void){
	int x = 0;
	return (x = 1) + (x = 2);
}
`

func main() {
	fmt.Println("--- running a defined program ---")
	res := undefc.RunSource(defined, "hello.c", undefc.Options{})
	fmt.Printf("%sexit status %d\n\n", res.Output, res.ExitCode)

	fmt.Println("--- running an undefined program ---")
	res = undefc.RunSource(undefined, "unseq.c", undefc.Options{})
	if res.UB != nil {
		fmt.Print(res.UB.Report())
		fmt.Printf("\ncatalog entry: %s\n", res.UB.Behavior)
	} else {
		fmt.Println("BUG: the checker missed the undefined behavior!")
	}

	fmt.Println("\n--- the catalog (paper §5.2.1) ---")
	static, dynamic := 0, 0
	for _, b := range undefc.Catalog() {
		if b.Static {
			static++
		} else {
			dynamic++
		}
	}
	fmt.Printf("%d undefined behaviors cataloged: %d statically detectable, %d only dynamically\n",
		len(undefc.Catalog()), static, dynamic)
}
