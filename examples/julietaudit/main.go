// Julietaudit: regenerate the paper's Figure 2 end to end — generate the
// Juliet-style benchmark, run all four analysis tools on every test, and
// print the per-class detection table plus timing.
//
//	go run ./examples/julietaudit
package main

import (
	"fmt"

	"repro/internal/runner"
	"repro/internal/suite"
	"repro/internal/tools"
)

func main() {
	s := suite.Juliet()
	fmt.Printf("generated %d tests: %d undefined, %d paired defined controls\n",
		len(s.Cases), s.BadCount(), len(s.Cases)-s.BadCount())
	fmt.Printf("(the NIST original: 4113 tests in the same six classes)\n\n")

	fig := runner.RunJuliet(s, tools.All(tools.Config{}))
	fmt.Print(fig.Render())

	fmt.Println("\nReading the table against the paper's Figure 2:")
	fmt.Println(" - kcc and the (patched) Value Analysis catch every class;")
	fmt.Println(" - Valgrind and CheckPointer score 0 on division by zero and")
	fmt.Println("   integer overflow — their instrumentation cannot see them;")
	fmt.Println(" - CheckPointer is weak on uninitialized memory (it tracks")
	fmt.Println("   pointers, not values);")
	fmt.Println(" - Valgrind trails CheckPointer on invalid pointers (the")
	fmt.Println("   stack is one addressable blob under binary instrumentation).")
}
