// Gallery: the paper's §2 examples of undefined behavior, run through the
// checker. Each program is shown with what real compilers do to it (per the
// paper) and what the semantics-based checker reports.
//
//	go run ./examples/gallery
package main

import (
	"fmt"

	undefc "repro"
	"repro/internal/ctypes"
)

type exhibit struct {
	title    string
	compiler string // what the paper observed real compilers doing
	src      string
	model    *ctypes.Model
}

var exhibits = []exhibit{
	{
		title: "§2.3 — dereferencing NULL is simply ignored",
		compiler: "GCC, Clang, and ICC do not generate code that segfaults:\n" +
			"they silently delete the dereference.",
		src: `
#include <stdio.h>
int main(void){
	*(char*)NULL;
	return 0;
}
`,
	},
	{
		title: "§2.3 — (x = 1) + (x = 2) looks like 3",
		compiler: "GCC returns 4: it rewrites the program to x=1; x=2; return x+x;\n" +
			"— a legal transformation, because the program has no meaning.",
		src: `
int main(void){
	int x = 0;
	return (x = 1) + (x = 2);
}
`,
	},
	{
		title: "§2.4 — division by zero moves before the printf",
		compiler: "GCC and ICC hoist the loop-invariant 5/d above the loop:\n" +
			"on a trapping machine, nothing prints before the fault.",
		src: `
#include <stdio.h>
int main(void){
	int r = 0, d = 0;
	for (int i = 0; i < 5; i++) {
		printf("%d\n", i);
		r += 5 / d;
	}
	return r;
}
`,
	},
	{
		title: "§2.5.1 — undefinedness depends on sizeof(int)",
		compiler: "With 4-byte ints this is a correct program. Under an\n" +
			"implementation with 8-byte ints, *p writes past the allocation.",
		src: `
#include <stdlib.h>
int main(void) {
	int *p = malloc(4);
	if (p) { *p = 1000; }
	return 0;
}
`,
		model: ctypes.Int8(),
	},
	{
		title: "§4.3.1 — &a < &b has no answer",
		compiler: "With concrete addresses this would always evaluate; with\n" +
			"symbolic base/offset pointers it gets stuck — as it should.",
		src: `
int main(void) {
	int a, b;
	if (&a < &b) { return 1; }
	return 0;
}
`,
	},
	{
		title: "§4.2.2 — strchr launders const away",
		compiler: "The call is defined and really does return a non-const\n" +
			"pointer into the const array; the write through it is not.",
		src: `
#include <string.h>
int main(void) {
	const char p[] = "hello";
	char *q = strchr(p, p[0]);
	*q = 'H';
	return 0;
}
`,
	},
}

func main() {
	for i, ex := range exhibits {
		fmt.Printf("══ exhibit %d: %s ══\n", i+1, ex.title)
		fmt.Printf("what compilers do:\n%s\n\n", ex.compiler)
		res := undefc.RunSource(ex.src, fmt.Sprintf("exhibit%d.c", i+1), undefc.Options{Model: ex.model})
		if res.UB != nil {
			fmt.Printf("what the checker says:\n  UB %05d [C11 §%s]: %s\n",
				res.UB.Behavior.Code, res.UB.Behavior.Section, res.UB.Msg)
		} else {
			fmt.Printf("what the checker says:\n  defined; exit %d\n", res.ExitCode)
		}
		if res.Output != "" {
			fmt.Printf("  (output before the error: %q)\n", res.Output)
		}
		fmt.Println()
	}
}
