// Evalorder: the paper's §2.5.2 experiment. The program below is compiled
// without incident by GCC, but CompCert — a *verified* compiler — generates
// code that divides by zero, because evaluation order in C is unspecified
// and there is an order (right-to-left) under which setDenom(0) runs before
// 10/d. Both are correct: the program contains reachable undefined
// behavior, so "any tool seeking to identify all undefined behaviors must
// search all possible evaluation strategies."
//
//	go run ./examples/evalorder
package main

import (
	"context"
	"fmt"

	undefc "repro"
	"repro/internal/interp"
	"repro/internal/search"
)

const setDenom = `
int d = 5;
int setDenom(int x){
	return d = x;
}
int main(void) {
	return (10/d) + setDenom(0);
}
`

func main() {
	fmt.Println("the program (paper §2.5.2):")
	fmt.Print(setDenom)

	fmt.Println("--- left-to-right (GCC's order) ---")
	res := undefc.RunSource(setDenom, "setdenom.c", undefc.Options{})
	report(res)

	fmt.Println("\n--- right-to-left (the order CompCert chose) ---")
	res = undefc.RunSource(setDenom, "setdenom.c", undefc.Options{
		Exec: interp.Options{Sched: interp.RightToLeft{}},
	})
	report(res)

	fmt.Println("\n--- exhaustive search over all orders ---")
	prog, err := undefc.Compile(setDenom, "setdenom.c", undefc.Options{})
	if err != nil {
		panic(err)
	}
	sres := search.Explore(context.Background(), prog, search.Options{POR: true})
	fmt.Printf("%d executions, %d distinct behaviors (exhausted: %v, %d orders pruned as commuting)\n",
		sres.Runs, len(sres.Outcomes), sres.Exhausted, sres.Stats.OrdersPruned)
	for i, o := range sres.Outcomes {
		if o.UB != nil {
			fmt.Printf("  behavior %d: UNDEFINED — %s\n", i+1, o.UB.Msg)
		} else {
			fmt.Printf("  behavior %d: defined, exit %d\n", i+1, o.ExitCode)
		}
	}
	if sres.UB() != nil {
		fmt.Println("\nverdict: the program is undefined — some evaluation order reaches UB.")
	}
}

func report(res undefc.Result) {
	if res.UB != nil {
		fmt.Printf("UNDEFINED: UB %05d [C11 §%s] %s\n",
			res.UB.Behavior.Code, res.UB.Behavior.Section, res.UB.Msg)
		return
	}
	fmt.Printf("defined on this order: exit %d\n", res.ExitCode)
}
